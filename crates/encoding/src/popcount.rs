//! Bit-range popcount and inversion over word arrays.
//!
//! Lines are stored LSB-first: bit `i` of a line lives in
//! `words[i / 64]` at in-word position `i % 64`. Partitions are contiguous
//! bit ranges in this order and may span word boundaries, so these helpers
//! operate on arbitrary `(start_bit, len_bits)` ranges.
//!
//! This module is the software model of the paper's `getNumOfBit1()`
//! hardware bit counter.

/// Counts `1` bits in an entire word array.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::popcount_words;
///
/// assert_eq!(popcount_words(&[0b1011, u64::MAX]), 3 + 64);
/// ```
pub fn popcount_words(words: &[u64]) -> u32 {
    popcount_words_x4(words)
}

/// The unrolled u64×4 popcount kernel: four independent accumulators so
/// the per-word `popcnt`s pipeline (and autovectorize where the target
/// supports it) instead of serializing on one add chain.
///
/// This is the hot kernel behind [`popcount_words`], the word-aligned
/// fast path of [`popcount_range`], and the batched per-partition
/// popcounts ([`popcount_word_partitions`]). [`popcount_range_masked`]
/// stays the scalar reference oracle the property suite pits it against.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::popcount_words_x4;
///
/// let words = [u64::MAX, 0, 0xFF, 1, 0b111];
/// assert_eq!(popcount_words_x4(&words), 64 + 8 + 1 + 3);
/// ```
pub fn popcount_words_x4(words: &[u64]) -> u32 {
    let mut lanes = [0u32; 4];
    let mut quads = words.chunks_exact(4);
    for quad in &mut quads {
        lanes[0] += quad[0].count_ones();
        lanes[1] += quad[1].count_ones();
        lanes[2] += quad[2].count_ones();
        lanes[3] += quad[3].count_ones();
    }
    let tail: u32 = quads.remainder().iter().map(|w| w.count_ones()).sum();
    lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail
}

/// Batched per-partition popcounts for word-aligned equal partitions:
/// one streaming pass over `words` fills `out[p]` with the popcount of
/// partition `p` (each `words_per_partition` consecutive words). The
/// batched equivalent of calling [`popcount_range`] per partition, minus
/// the per-call range checks and without touching any word twice.
///
/// # Panics
///
/// Panics if `words_per_partition` is zero or
/// `words.len() != words_per_partition * out.len()`.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::popcount_word_partitions;
///
/// let words = [u64::MAX, 0, 0xF0, 0b11];
/// let mut out = [0u32; 4];
/// popcount_word_partitions(&words, 1, &mut out);
/// assert_eq!(out, [64, 0, 4, 2]);
/// let mut pairs = [0u32; 2];
/// popcount_word_partitions(&words, 2, &mut pairs);
/// assert_eq!(pairs, [64, 6]);
/// ```
pub fn popcount_word_partitions(words: &[u64], words_per_partition: usize, out: &mut [u32]) {
    assert!(words_per_partition > 0, "partitions must hold >= 1 word");
    assert_eq!(
        words.len(),
        words_per_partition * out.len(),
        "{} words cannot split into {} partitions of {} words",
        words.len(),
        out.len(),
        words_per_partition
    );
    if words_per_partition == 1 {
        // One word per partition (the paper's 512-bit / 8-way layout):
        // a pure per-lane popcount with no reduction at all.
        for (count, &word) in out.iter_mut().zip(words) {
            *count = word.count_ones();
        }
        return;
    }
    for (count, part) in out.iter_mut().zip(words.chunks_exact(words_per_partition)) {
        *count = popcount_words_x4(part);
    }
}

/// Counts `1` bits in the range `[start_bit, start_bit + len_bits)`.
///
/// # Panics
///
/// Panics if the range extends past the end of `words`.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::popcount_range;
///
/// let words = [0xFF00u64, 0x1];
/// assert_eq!(popcount_range(&words, 8, 8), 8);
/// assert_eq!(popcount_range(&words, 0, 8), 0);
/// assert_eq!(popcount_range(&words, 60, 8), 1); // spans the word boundary
/// ```
pub fn popcount_range(words: &[u64], start_bit: u32, len_bits: u32) -> u32 {
    range_check(words, start_bit, len_bits);
    // Word-aligned fast path: partitions are usually whole words (e.g.
    // 512-bit lines split 8 ways), where no masking is needed at all.
    if start_bit.is_multiple_of(64) && len_bits.is_multiple_of(64) {
        let first = (start_bit / 64) as usize;
        let n = (len_bits / 64) as usize;
        return popcount_words(&words[first..first + n]);
    }
    popcount_range_masked(words, start_bit, len_bits)
}

/// The general masked path of [`popcount_range`], correct for any
/// alignment. Public so the property suite can pit the fast path against
/// it directly.
pub fn popcount_range_masked(words: &[u64], start_bit: u32, len_bits: u32) -> u32 {
    range_check(words, start_bit, len_bits);
    let mut count = 0;
    let mut bit = start_bit;
    let end = start_bit + len_bits;
    while bit < end {
        let word = (bit / 64) as usize;
        let offset = bit % 64;
        let take = (64 - offset).min(end - bit);
        let mask = chunk_mask(offset, take);
        count += (words[word] & mask).count_ones();
        bit += take;
    }
    count
}

/// Inverts every bit in the range `[start_bit, start_bit + len_bits)`.
///
/// # Panics
///
/// Panics if the range extends past the end of `words`.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::invert_range;
///
/// let mut words = [0u64; 2];
/// invert_range(&mut words, 60, 8);
/// assert_eq!(words[0], 0xF000_0000_0000_0000);
/// assert_eq!(words[1], 0xF);
/// ```
pub fn invert_range(words: &mut [u64], start_bit: u32, len_bits: u32) {
    range_check(words, start_bit, len_bits);
    let mut bit = start_bit;
    let end = start_bit + len_bits;
    while bit < end {
        let word = (bit / 64) as usize;
        let offset = bit % 64;
        let take = (64 - offset).min(end - bit);
        words[word] ^= chunk_mask(offset, take);
        bit += take;
    }
}

/// The portion of the mask for range `[range_start, range_start+range_len)`
/// that falls inside word `word_index` (each word is 64 bits).
///
/// Used to apply per-partition inversion to a single word on the demand
/// path without touching the rest of the line.
///
/// # Example
///
/// ```
/// use cnt_encoding::popcount::range_mask_in_word;
///
/// // Range covering bits 60..68 intersects word 0 in bits 60..64 ...
/// assert_eq!(range_mask_in_word(60, 8, 0), 0xF000_0000_0000_0000);
/// // ... and word 1 in bits 0..4.
/// assert_eq!(range_mask_in_word(60, 8, 1), 0xF);
/// // A disjoint word gets an empty mask.
/// assert_eq!(range_mask_in_word(60, 8, 2), 0);
/// ```
pub fn range_mask_in_word(range_start: u32, range_len: u32, word_index: usize) -> u64 {
    let word_start = word_index as u32 * 64;
    let word_end = word_start + 64;
    let range_end = range_start + range_len;
    let lo = range_start.max(word_start);
    let hi = range_end.min(word_end);
    if lo >= hi {
        return 0;
    }
    chunk_mask(lo - word_start, hi - lo)
}

fn chunk_mask(offset: u32, len: u32) -> u64 {
    debug_assert!(offset < 64 && len >= 1 && offset + len <= 64);
    if len == 64 {
        u64::MAX
    } else {
        ((1u64 << len) - 1) << offset
    }
}

fn range_check(words: &[u64], start_bit: u32, len_bits: u32) {
    let total = words.len() as u32 * 64;
    assert!(
        start_bit + len_bits <= total,
        "bit range {start_bit}+{len_bits} exceeds {total}-bit buffer"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_word_ranges() {
        let words = [u64::MAX, 0, 0xF0F0];
        assert_eq!(popcount_range(&words, 0, 64), 64);
        assert_eq!(popcount_range(&words, 64, 64), 0);
        assert_eq!(popcount_range(&words, 128, 64), 8);
        assert_eq!(popcount_range(&words, 0, 192), 72);
        assert_eq!(popcount_words(&words), 72);
    }

    #[test]
    fn sub_word_and_straddling_ranges() {
        let words = [0xFF00_0000_0000_00FFu64, 0xFF];
        assert_eq!(popcount_range(&words, 0, 8), 8);
        assert_eq!(popcount_range(&words, 8, 8), 0);
        assert_eq!(popcount_range(&words, 56, 16), 16); // 8 high + 8 low
                                                        // Bits 4..60: the top half of the low 0xFF (4 ones) plus the bottom
                                                        // half of the high 0xFF.. nibble range (4 ones).
        assert_eq!(popcount_range(&words, 4, 56), 8);
    }

    #[test]
    fn invert_round_trips() {
        let original = [0x1234_5678_9ABC_DEF0u64, 0x0FED_CBA9_8765_4321];
        for (start, len) in [(0u32, 128u32), (3, 61), (64, 64), (60, 10), (127, 1)] {
            let mut words = original;
            invert_range(&mut words, start, len);
            assert_eq!(
                popcount_range(&words, start, len),
                len - popcount_range(&original, start, len)
            );
            invert_range(&mut words, start, len);
            assert_eq!(
                words, original,
                "double inversion must restore ({start},{len})"
            );
        }
    }

    #[test]
    fn invert_does_not_touch_outside() {
        let mut words = [0u64; 2];
        invert_range(&mut words, 10, 20);
        assert_eq!(popcount_range(&words, 0, 10), 0);
        assert_eq!(popcount_range(&words, 10, 20), 20);
        assert_eq!(popcount_range(&words, 30, 98), 0);
    }

    #[test]
    fn word_mask_partitions_cover_exactly() {
        // Partition bits 0..512 into 8-bit ranges; every word must be
        // covered exactly once by the union of range masks.
        for word in 0..8usize {
            let mut acc = 0u64;
            for p in 0..64u32 {
                let m = range_mask_in_word(p * 8, 8, word);
                assert_eq!(acc & m, 0, "masks must not overlap");
                acc |= m;
            }
            assert_eq!(acc, u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_panics() {
        popcount_range(&[0u64], 1, 64);
    }

    #[test]
    fn x4_kernel_handles_every_remainder_length() {
        let words: Vec<u64> = (0..11u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for n in 0..=words.len() {
            let expected: u32 = words[..n].iter().map(|w| w.count_ones()).sum();
            assert_eq!(popcount_words_x4(&words[..n]), expected, "length {n}");
        }
    }

    #[test]
    fn word_partitions_agree_with_ranges() {
        let words: Vec<u64> = (1..=8u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89AB_CDEF))
            .collect();
        for wpp in [1usize, 2, 4, 8] {
            let parts = words.len() / wpp;
            let mut out = vec![0u32; parts];
            popcount_word_partitions(&words, wpp, &mut out);
            for (p, &count) in out.iter().enumerate() {
                let start = (p * wpp * 64) as u32;
                let len = (wpp * 64) as u32;
                assert_eq!(count, popcount_range_masked(&words, start, len));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn word_partitions_reject_uneven_split() {
        let mut out = [0u32; 3];
        popcount_word_partitions(&[0u64; 8], 2, &mut out);
    }
}

//! The deferred-update FIFOs.
//!
//! When the predictor decides to re-encode a line, the write must not
//! block the demand path; the paper queues the update in a data FIFO (plus
//! an index FIFO for the target line address) and drains it "when there is
//! an idle time slot". This module models both FIFOs as one bounded queue
//! of typed pending updates, with occupancy statistics and a configurable
//! overflow policy.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// What to do when an update arrives at a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OverflowPolicy {
    /// Drop the incoming update: the line keeps its old (suboptimal but
    /// correct) encoding — the paper's natural best-effort semantics.
    #[default]
    DropNewest,
    /// Drop the oldest queued update to make room for the newest.
    DropOldest,
}

/// FIFO traffic statistics.
///
/// The counters reconcile with the live queue: every accepted update is
/// eventually drained, cancelled, or (under
/// [`OverflowPolicy::DropOldest`]) dropped, so
/// `pushed == drained + cancelled + dropped_from_queue + len()` always
/// holds — see [`FifoStats::in_queue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FifoStats {
    /// Updates accepted into the queue.
    pub pushed: u64,
    /// Updates dropped by the overflow policy.
    pub dropped: u64,
    /// Updates drained (applied).
    pub drained: u64,
    /// Updates removed by [`UpdateFifo::cancel_where`] (e.g. because
    /// their target line was evicted) without ever being applied.
    pub cancelled: u64,
    /// Updates evicted from the queue by [`OverflowPolicy::DropOldest`]
    /// (a subset of `dropped`; `DropNewest` rejections never entered the
    /// queue and are counted in `dropped` only).
    pub dropped_from_queue: u64,
    /// High-water mark of queue occupancy.
    pub max_occupancy: usize,
}

impl FifoStats {
    /// Occupancy derived from the counters alone:
    /// `pushed - drained - cancelled - dropped_from_queue`.
    ///
    /// Matches [`UpdateFifo::len`] at all times; this is the invariant
    /// that used to go stale when `cancel_where` bypassed the stats.
    #[must_use]
    pub fn in_queue(&self) -> u64 {
        self.pushed - self.drained - self.cancelled - self.dropped_from_queue
    }
}

/// Image of an [`UpdateFifo`]: the pending updates (oldest first) plus
/// traffic statistics. Produced by [`UpdateFifo::snapshot`] and consumed
/// by [`UpdateFifo::restore`]. (Not itself serde-serializable — the
/// vendored derive shim has no generics support — so checkpoint formats
/// serialize the two public fields themselves.)
#[derive(Debug, Clone, PartialEq)]
pub struct FifoSnapshot<T> {
    /// Pending updates, oldest first.
    pub queue: Vec<T>,
    /// Traffic statistics at capture time.
    pub stats: FifoStats,
}

/// A bounded queue of pending encoding updates.
///
/// # Example
///
/// ```
/// use cnt_encoding::{OverflowPolicy, UpdateFifo};
///
/// let mut fifo: UpdateFifo<&str> = UpdateFifo::new(2, OverflowPolicy::DropNewest);
/// fifo.push("a");
/// fifo.push("b");
/// fifo.push("c"); // dropped: queue is full
/// assert_eq!(fifo.pop(), Some("a"));
/// assert_eq!(fifo.stats().dropped, 1);
/// ```
#[derive(Debug, Clone)]
pub struct UpdateFifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    policy: OverflowPolicy,
    stats: FifoStats,
}

impl<T> UpdateFifo<T> {
    /// Creates a FIFO holding at most `capacity` pending updates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        UpdateFifo {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            stats: FifoStats::default(),
        }
    }

    /// Maximum number of queued updates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued updates.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` when the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &FifoStats {
        &self.stats
    }

    /// Enqueues an update, applying the overflow policy when full.
    /// Returns `true` if the update was accepted.
    pub fn push(&mut self, update: T) -> bool {
        if self.is_full() {
            match self.policy {
                OverflowPolicy::DropNewest => {
                    self.stats.dropped += 1;
                    return false;
                }
                OverflowPolicy::DropOldest => {
                    self.queue.pop_front();
                    self.stats.dropped += 1;
                    self.stats.dropped_from_queue += 1;
                }
            }
        }
        self.queue.push_back(update);
        self.stats.pushed += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        true
    }

    /// Dequeues the oldest pending update (an idle slot drained it).
    pub fn pop(&mut self) -> Option<T> {
        let item = self.queue.pop_front();
        if item.is_some() {
            self.stats.drained += 1;
        }
        item
    }

    /// Peeks at the oldest pending update without draining it.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Removes every queued update matching a predicate (e.g. updates for
    /// a line that was just evicted), returning how many were removed.
    ///
    /// Cancellations are recorded in [`FifoStats::cancelled`], so
    /// occupancy derived from the counters ([`FifoStats::in_queue`])
    /// stays in sync with [`len`](Self::len).
    pub fn cancel_where<F: FnMut(&T) -> bool>(&mut self, mut predicate: F) -> usize {
        let before = self.queue.len();
        self.queue.retain(|u| !predicate(u));
        let removed = before - self.queue.len();
        self.stats.cancelled += removed as u64;
        removed
    }

    /// Iterates over the pending updates, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// Captures the queue contents and statistics for checkpointing.
    pub fn snapshot(&self) -> FifoSnapshot<T>
    where
        T: Clone,
    {
        FifoSnapshot {
            queue: self.queue.iter().cloned().collect(),
            stats: self.stats,
        }
    }

    /// Restores state captured with [`snapshot`](Self::snapshot).
    ///
    /// # Errors
    ///
    /// Fails — leaving this FIFO untouched — if the snapshot overflows
    /// this FIFO's capacity or its statistics do not reconcile with the
    /// queue (`pushed == drained + cancelled + dropped_from_queue + len`).
    pub fn restore(&mut self, snap: FifoSnapshot<T>) -> Result<(), String> {
        if snap.queue.len() > self.capacity {
            return Err(format!(
                "snapshot holds {} pending updates, capacity is {}",
                snap.queue.len(),
                self.capacity
            ));
        }
        let accounted = snap
            .stats
            .drained
            .checked_add(snap.stats.cancelled)
            .and_then(|n| n.checked_add(snap.stats.dropped_from_queue))
            .and_then(|n| n.checked_add(snap.queue.len() as u64));
        if accounted != Some(snap.stats.pushed) {
            return Err(format!(
                "snapshot stats do not reconcile with {} queued updates: {:?}",
                snap.queue.len(),
                snap.stats
            ));
        }
        if snap.stats.max_occupancy < snap.queue.len() || snap.stats.max_occupancy > self.capacity {
            return Err(format!(
                "snapshot max_occupancy {} is impossible for a queue of {} in capacity {}",
                snap.stats.max_occupancy,
                snap.queue.len(),
                self.capacity
            ));
        }
        self.queue = snap.queue.into();
        self.stats = snap.stats;
        Ok(())
    }
}

impl<T> fmt::Display for UpdateFifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} pending, {} pushed, {} dropped, {} drained",
            self.queue.len(),
            self.capacity,
            self.stats.pushed,
            self.stats.dropped,
            self.stats.drained
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = UpdateFifo::new(4, OverflowPolicy::DropNewest);
        for i in 0..4 {
            assert!(f.push(i));
        }
        assert_eq!(f.peek(), Some(&0));
        let drained: Vec<i32> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(f.is_empty());
        assert_eq!(f.stats().drained, 4);
    }

    #[test]
    fn drop_newest_rejects_incoming() {
        let mut f = UpdateFifo::new(2, OverflowPolicy::DropNewest);
        assert!(f.push('a'));
        assert!(f.push('b'));
        assert!(!f.push('c'));
        assert_eq!(f.len(), 2);
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().pushed, 2);
        assert_eq!(f.pop(), Some('a'));
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let mut f = UpdateFifo::new(2, OverflowPolicy::DropOldest);
        f.push('a');
        f.push('b');
        assert!(f.push('c'));
        assert_eq!(f.pop(), Some('b'));
        assert_eq!(f.pop(), Some('c'));
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().pushed, 3);
    }

    #[test]
    fn max_occupancy_is_high_water_mark() {
        let mut f = UpdateFifo::new(8, OverflowPolicy::DropNewest);
        f.push(1);
        f.push(2);
        f.push(3);
        f.pop();
        f.pop();
        f.push(4);
        assert_eq!(f.stats().max_occupancy, 3);
    }

    #[test]
    fn cancel_where_removes_matching() {
        let mut f = UpdateFifo::new(8, OverflowPolicy::DropNewest);
        for i in 0..6 {
            f.push(i);
        }
        let removed = f.cancel_where(|&i| i % 2 == 0);
        assert_eq!(removed, 3);
        let rest: Vec<i32> = f.iter().copied().collect();
        assert_eq!(rest, vec![1, 3, 5]);
    }

    #[test]
    fn cancel_where_updates_stats() {
        // Regression: cancellations used to bypass `FifoStats`, so
        // `pushed - drained` overstated the live occupancy forever after.
        let mut f = UpdateFifo::new(8, OverflowPolicy::DropNewest);
        for i in 0..6 {
            f.push(i);
        }
        f.pop();
        f.cancel_where(|&i| i >= 4);
        assert_eq!(f.stats().cancelled, 2);
        assert_eq!(f.stats().in_queue(), f.len() as u64);
        // Keep going: more traffic after the cancellation stays in sync.
        f.push(7);
        f.pop();
        assert_eq!(f.stats().in_queue(), f.len() as u64);
    }

    #[test]
    fn counter_occupancy_matches_len_under_both_policies() {
        for policy in [OverflowPolicy::DropNewest, OverflowPolicy::DropOldest] {
            let mut f = UpdateFifo::new(3, policy);
            for i in 0..5 {
                f.push(i); // overflows twice
                assert_eq!(f.stats().in_queue(), f.len() as u64, "{policy:?}");
            }
            f.cancel_where(|&i| i % 2 == 1);
            assert_eq!(f.stats().in_queue(), f.len() as u64, "{policy:?}");
            while f.pop().is_some() {
                assert_eq!(f.stats().in_queue(), f.len() as u64, "{policy:?}");
            }
            assert_eq!(f.stats().in_queue(), 0, "{policy:?}");
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut f = UpdateFifo::new(4, OverflowPolicy::DropOldest);
        for i in 0..7 {
            f.push(i);
        }
        f.pop();
        f.cancel_where(|&i| i == 4);
        let snap = f.snapshot();
        let mut g = UpdateFifo::new(4, OverflowPolicy::DropOldest);
        g.restore(snap).expect("valid snapshot");
        assert_eq!(g.stats(), f.stats());
        assert_eq!(
            g.iter().copied().collect::<Vec<_>>(),
            f.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(g.stats().in_queue(), g.len() as u64);
        assert_eq!(g.pop(), f.pop());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut f = UpdateFifo::new(2, OverflowPolicy::DropNewest);
        let over = FifoSnapshot {
            queue: vec![1, 2, 3],
            stats: FifoStats {
                pushed: 3,
                max_occupancy: 3,
                ..FifoStats::default()
            },
        };
        assert!(f.restore(over).is_err(), "over capacity");
        let unbalanced = FifoSnapshot {
            queue: vec![1],
            stats: FifoStats {
                pushed: 5,
                max_occupancy: 2,
                ..FifoStats::default()
            },
        };
        assert!(f.restore(unbalanced).is_err(), "stats do not reconcile");
        let impossible_peak = FifoSnapshot {
            queue: vec![1, 2],
            stats: FifoStats {
                pushed: 2,
                max_occupancy: 1,
                ..FifoStats::default()
            },
        };
        assert!(f.restore(impossible_peak).is_err(), "peak below occupancy");
        assert!(f.is_empty(), "rejected restores leave the FIFO untouched");
        assert_eq!(f.stats(), &FifoStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = UpdateFifo::<u8>::new(0, OverflowPolicy::DropNewest);
    }

    #[test]
    fn display_summarizes() {
        let mut f = UpdateFifo::new(2, OverflowPolicy::DropNewest);
        f.push(1);
        assert_eq!(f.to_string(), "1/2 pending, 1 pushed, 0 dropped, 0 drained");
    }
}

//! Breadth-first search over a random graph in CSR form.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// BFS from vertex 0 over a random `degree`-regular directed graph of
/// `vertices` vertices (CSR adjacency), writing the discovered depth of
/// every vertex.
///
/// Irregular, data-dependent reads over small-integer arrays (offsets,
/// vertex ids, depths): the graph-analytics access pattern.
///
/// # Panics
///
/// Panics if `vertices < 2` or `degree` is zero, or if the traced result
/// disagrees with an untraced reference BFS (self-check).
pub fn bfs(vertices: usize, degree: usize, seed: u64) -> Workload {
    assert!(vertices >= 2, "bfs needs at least two vertices");
    assert!(degree > 0, "bfs needs at least one edge per vertex");
    let mut mem = TracedMemory::new();
    let offsets = mem.alloc(((vertices + 1) * 4) as u64);
    let edges = mem.alloc((vertices * degree * 4) as u64);
    let depths = mem.alloc((vertices * 4) as u64);

    // Build a random graph whose vertex 0 can reach a good fraction of the
    // graph: edge k of vertex v targets a random vertex, with edge 0
    // biased toward v+1 to keep connectivity.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ref_edges = vec![Vec::with_capacity(degree); vertices];
    for (v, targets) in ref_edges.iter_mut().enumerate() {
        for k in 0..degree {
            let t = if k == 0 {
                (v + 1) % vertices
            } else {
                rng.gen_range(0..vertices)
            };
            targets.push(t);
        }
    }

    for (v, targets) in ref_edges.iter().enumerate() {
        mem.store_u32(offsets + (v * 4) as u64, (v * degree) as u32);
        for (k, &t) in targets.iter().enumerate() {
            mem.store_u32(edges + ((v * degree + k) * 4) as u64, t as u32);
        }
        mem.store_u32(depths + (v * 4) as u64, u32::MAX);
    }
    mem.store_u32(offsets + (vertices * 4) as u64, (vertices * degree) as u32);

    // Traced BFS.
    let mut queue = VecDeque::new();
    mem.store_u32(depths, 0);
    queue.push_back(0usize);
    while let Some(v) = queue.pop_front() {
        let depth = mem.load_u32(depths + (v * 4) as u64);
        let start = mem.load_u32(offsets + (v * 4) as u64) as usize;
        let end = mem.load_u32(offsets + ((v + 1) * 4) as u64) as usize;
        for e in start..end {
            let t = mem.load_u32(edges + (e * 4) as u64) as usize;
            let t_depth = mem.load_u32(depths + (t * 4) as u64);
            if t_depth == u32::MAX {
                mem.store_u32(depths + (t * 4) as u64, depth + 1);
                queue.push_back(t);
            }
        }
    }

    // Untraced reference BFS.
    let mut expect = vec![u32::MAX; vertices];
    expect[0] = 0;
    let mut q = VecDeque::from([0usize]);
    while let Some(v) = q.pop_front() {
        for &t in &ref_edges[v] {
            if expect[t] == u32::MAX {
                expect[t] = expect[v] + 1;
                q.push_back(t);
            }
        }
    }
    for (v, &expected_depth) in expect.iter().enumerate() {
        let addr = depths + (v * 4) as u64;
        let word = mem.peek_u64(addr.align_down(8));
        let got = if addr.is_aligned(8) {
            word as u32
        } else {
            (word >> 32) as u32
        };
        assert_eq!(got, expected_depth, "bfs self-check failed at vertex {v}");
    }

    Workload::new(
        "bfs",
        format!("BFS over a {vertices}-vertex, degree-{degree} random graph"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_reaches_everything_via_ring_edges() {
        // Edge 0 of each vertex forms a ring, so all vertices are reached
        // and the kernel's self-check exercises every depth.
        let w = bfs(64, 3, 5);
        assert!(!w.trace.is_empty());
        // Mixed but read-dominated.
        let wf = w.trace.write_fraction();
        assert!(wf < 0.6, "write fraction {wf}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(bfs(32, 2, 9).trace, bfs(32, 2, 9).trace);
        assert_ne!(bfs(32, 2, 9).trace, bfs(32, 2, 10).trace);
    }
}

//! Instrumented benchmark kernels.
//!
//! Every kernel executes a real algorithm against a
//! [`TracedMemory`](crate::TracedMemory), asserts its own output is
//! correct, and returns a [`Workload`](crate::Workload) containing the
//! recorded data-carrying trace. Kernels are deterministic: the same
//! parameters always produce the same trace.

mod bfs;
mod dct;
mod fir;
mod hashmix;
mod histogram;
mod image;
mod listchase;
mod matmul;
mod search;
mod sort;
mod spmv;
mod stencil;
mod stream;
mod strings;

pub use bfs::bfs;
pub use dct::dct8x8;
pub use fir::fir;
pub use hashmix::hash_mix;
pub use histogram::histogram;
pub use image::image_threshold;
pub use listchase::pointer_chase;
pub use matmul::matmul;
pub use search::binary_search;
pub use sort::quicksort;
pub use spmv::spmv;
pub use stencil::stencil2d;
pub use stream::stream_triad;
pub use strings::string_search;

#[cfg(test)]
mod tests {
    use crate::Workload;

    fn check(w: &Workload) {
        assert!(!w.trace.is_empty(), "{} produced no accesses", w.name);
        assert!(!w.name.is_empty());
        assert!(!w.description.is_empty());
        let wf = w.trace.write_fraction();
        assert!((0.0..=1.0).contains(&wf), "{}: write fraction {wf}", w.name);
    }

    #[test]
    fn all_kernels_produce_valid_traces() {
        // Each kernel asserts its own algorithmic correctness internally;
        // failures surface as panics here.
        for w in [
            super::matmul(12, 1),
            super::fir(256, 8),
            super::quicksort(256, 7),
            super::histogram(512, 32, 11),
            super::stencil2d(24, 16, 2),
            super::string_search(512, 6, 3),
            super::binary_search(256, 64, 5),
            super::pointer_chase(64, 256, 9),
            super::hash_mix(256, 13),
            super::image_threshold(32, 24, 17),
            super::spmv(48, 6, 19),
            super::stream_triad(192, 2, 23),
            super::bfs(96, 3, 29),
            super::dct8x8(3, 2, 31),
        ] {
            check(&w);
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = super::quicksort(128, 42);
        let b = super::quicksort(128, 42);
        assert_eq!(a.trace, b.trace);
        let c = super::quicksort(128, 43);
        assert_ne!(a.trace, c.trace, "different seed must change the trace");
    }

    #[test]
    fn read_write_mixes_differ_across_kernels() {
        // With enough probes the init writes wash out and binary search is
        // effectively read-only; quicksort keeps swapping throughout.
        let read_only = super::binary_search(256, 2048, 5);
        let mixed = super::quicksort(256, 7);
        assert!(read_only.trace.write_fraction() < 0.05);
        assert!(mixed.trace.write_fraction() > 0.15);
    }
}

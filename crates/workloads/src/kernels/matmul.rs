//! Dense integer matrix multiplication.

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// `n × n` integer matrix multiply, repeated `reps` times.
///
/// `C = A · B` over `u32` elements with small, structured values — typical
/// of fixed-point workloads whose upper bits are mostly zero, which is
/// exactly the bit-density skew the CNT-Cache encoder exploits.
///
/// # Panics
///
/// Panics if `n` or `reps` is zero, or if the computed product disagrees
/// with an untraced reference computation (kernel self-check).
pub fn matmul(n: usize, reps: usize) -> Workload {
    assert!(n > 0 && reps > 0, "matmul needs n > 0 and reps > 0");
    let mut mem = TracedMemory::new();
    let bytes = (n * n * 4) as u64;
    let a = mem.alloc(bytes);
    let b = mem.alloc(bytes);
    let c = mem.alloc(bytes);

    let idx = |base: cnt_sim::Address, i: usize, j: usize| base + ((i * n + j) * 4) as u64;

    // Initialize inputs (traced: real programs write their buffers too).
    for i in 0..n {
        for j in 0..n {
            mem.store_u32(idx(a, i, j), ((i + j) % 7) as u32);
            mem.store_u32(idx(b, i, j), ((i * j) % 5 + 1) as u32);
        }
    }

    for _ in 0..reps {
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0u32;
                for k in 0..n {
                    let x = mem.load_u32(idx(a, i, k));
                    let y = mem.load_u32(idx(b, k, j));
                    acc = acc.wrapping_add(x.wrapping_mul(y));
                }
                mem.store_u32(idx(c, i, j), acc);
            }
        }
    }

    // Self-check against an untraced reference.
    for i in 0..n {
        for j in 0..n {
            let mut expect = 0u32;
            for k in 0..n {
                let x = ((i + k) % 7) as u32;
                let y = ((k * j) % 5 + 1) as u32;
                expect = expect.wrapping_add(x.wrapping_mul(y));
            }
            let got = mem.peek_u64(idx(c, i, j).align_down(8));
            let got = if idx(c, i, j).is_aligned(8) {
                got as u32
            } else {
                (got >> 32) as u32
            };
            assert_eq!(got, expect, "matmul self-check failed at ({i},{j})");
        }
    }

    Workload::new(
        "matmul",
        format!("{n}x{n} u32 matrix multiply, {reps} rep(s)"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape_matches_algorithm() {
        let n = 8;
        let w = matmul(n, 1);
        // 2n^2 init writes + per element: 2n loads + 1 write.
        let expected = 2 * n * n + n * n * (2 * n + 1);
        assert_eq!(w.trace.len(), expected);
    }

    #[test]
    fn reps_scale_the_compute_phase() {
        let n = 6;
        let one = matmul(n, 1).trace.len();
        let two = matmul(n, 2).trace.len();
        assert_eq!(two - one, n * n * (2 * n + 1));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_size_panics() {
        matmul(0, 1);
    }
}

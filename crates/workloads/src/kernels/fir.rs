//! Streaming FIR filter.

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// A `taps`-tap FIR filter over `samples` input samples.
///
/// Read-dominated streaming: each output reads `taps` inputs plus the
/// (tiny, cache-resident) coefficient array and writes one output.
///
/// # Panics
///
/// Panics if `samples <= taps`, `taps` is zero, or the self-check fails.
pub fn fir(samples: usize, taps: usize) -> Workload {
    assert!(taps > 0, "fir needs at least one tap");
    assert!(samples > taps, "fir needs samples > taps");
    let mut mem = TracedMemory::new();
    let input = mem.alloc((samples * 4) as u64);
    let coeff = mem.alloc((taps * 4) as u64);
    let output = mem.alloc(((samples - taps) * 4) as u64);

    // A deterministic pseudo-signal with small amplitudes.
    for i in 0..samples {
        let v = ((i * 37 + 11) % 251) as u32;
        mem.store_u32(input + (i * 4) as u64, v);
    }
    for t in 0..taps {
        mem.store_u32(coeff + (t * 4) as u64, (t as u32 % 4) + 1);
    }

    for i in 0..samples - taps {
        let mut acc = 0u32;
        for t in 0..taps {
            let x = mem.load_u32(input + ((i + t) * 4) as u64);
            let c = mem.load_u32(coeff + (t * 4) as u64);
            acc = acc.wrapping_add(x.wrapping_mul(c));
        }
        mem.store_u32(output + (i * 4) as u64, acc);
    }

    // Self-check a sample of outputs.
    for &i in &[0usize, (samples - taps) / 2, samples - taps - 1] {
        let mut expect = 0u32;
        for t in 0..taps {
            let x = (((i + t) * 37 + 11) % 251) as u32;
            let c = (t as u32 % 4) + 1;
            expect = expect.wrapping_add(x.wrapping_mul(c));
        }
        let addr = output + (i * 4) as u64;
        let word = mem.peek_u64(addr.align_down(8));
        let got = if addr.is_aligned(8) {
            word as u32
        } else {
            (word >> 32) as u32
        };
        assert_eq!(got, expect, "fir self-check failed at output {i}");
    }

    Workload::new(
        "fir",
        format!("{taps}-tap FIR over {samples} samples"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_is_read_heavy() {
        let w = fir(512, 16);
        assert!(
            w.trace.write_fraction() < 0.15,
            "write fraction {}",
            w.trace.write_fraction()
        );
    }

    #[test]
    fn trace_length_is_deterministic() {
        let w = fir(128, 4);
        // init: samples + taps writes; loop: (samples-taps) * (2*taps reads + 1 write)
        assert_eq!(w.trace.len(), 128 + 4 + (128 - 4) * (2 * 4 + 1));
    }

    #[test]
    #[should_panic(expected = "samples > taps")]
    fn degenerate_sizes_panic() {
        fir(4, 4);
    }
}

//! In-place quicksort over traced memory.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Iterative quicksort of `n` random 64-bit keys.
///
/// A classic mixed read/write workload with data-dependent access
/// patterns; the random keys are bit-dense (≈50 % ones), the adversarial
/// case for inversion coding.
///
/// # Panics
///
/// Panics if `n < 2` or the array is not sorted afterwards (self-check).
pub fn quicksort(n: usize, seed: u64) -> Workload {
    assert!(n >= 2, "quicksort needs at least two elements");
    let mut mem = TracedMemory::new();
    let arr = mem.alloc((n * 8) as u64);
    let at = |i: usize| arr + (i * 8) as u64;

    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        mem.store_u64(at(i), rng.gen());
    }

    // Iterative quicksort with an explicit range stack (Hoare partition).
    let mut stack: Vec<(usize, usize)> = vec![(0, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if lo >= hi {
            continue;
        }
        let pivot = mem.load_u64(at(lo + (hi - lo) / 2));
        let (mut i, mut j) = (lo, hi);
        loop {
            while mem.load_u64(at(i)) < pivot {
                i += 1;
            }
            while mem.load_u64(at(j)) > pivot {
                j -= 1;
            }
            if i >= j {
                break;
            }
            let a = mem.load_u64(at(i));
            let b = mem.load_u64(at(j));
            mem.store_u64(at(i), b);
            mem.store_u64(at(j), a);
            i += 1;
            if j == 0 {
                break;
            }
            j -= 1;
        }
        if j < hi {
            stack.push((j + 1, hi));
        }
        if lo < j {
            stack.push((lo, j));
        }
    }

    // Self-check: sorted and a permutation-preserving checksum.
    let mut prev = 0u64;
    let mut sum_after = 0u64;
    for i in 0..n {
        let v = mem.peek_u64(at(i));
        assert!(v >= prev, "quicksort self-check: not sorted at {i}");
        prev = v;
        sum_after = sum_after.wrapping_add(v);
    }
    let mut check_rng = SmallRng::seed_from_u64(seed);
    let sum_before: u64 = (0..n).fold(0u64, |acc, _| acc.wrapping_add(check_rng.gen::<u64>()));
    assert_eq!(
        sum_before, sum_after,
        "quicksort self-check: checksum changed"
    );

    Workload::new(
        "quicksort",
        format!("iterative quicksort of {n} random u64 keys"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_traces() {
        let w = quicksort(128, 1);
        assert!(w.trace.len() > 128 * 2);
        // Quicksort both reads (comparisons) and writes (swaps).
        let wf = w.trace.write_fraction();
        assert!(wf > 0.1 && wf < 0.9, "write fraction {wf}");
    }

    #[test]
    fn handles_tiny_arrays() {
        quicksort(2, 3);
        quicksort(3, 4);
    }
}

//! Linked-list pointer chasing.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Chases a randomly-permuted circular linked list of `nodes` nodes for
/// `hops` steps.
///
/// Each node occupies a full 64-byte line (pointer in the first word), so
/// every hop touches a different line: a read-only workload with zero
/// spatial locality whose data values are *addresses* (sparse high bits).
///
/// # Panics
///
/// Panics if `nodes < 2` or `hops` is zero, or if the traversal does not
/// return to the head after a full cycle (self-check).
pub fn pointer_chase(nodes: usize, hops: usize, seed: u64) -> Workload {
    assert!(nodes >= 2, "pointer_chase needs at least two nodes");
    assert!(hops > 0, "pointer_chase needs at least one hop");
    let mut mem = TracedMemory::new();
    let base = mem.alloc((nodes * 64) as u64);
    let node_addr = |i: usize| base + (i * 64) as u64;

    // A single-cycle permutation: visit order is a shuffle of all nodes.
    let mut order: Vec<usize> = (1..nodes).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut cycle = Vec::with_capacity(nodes);
    cycle.push(0);
    cycle.extend(order);
    for w in 0..nodes {
        let from = cycle[w];
        let to = cycle[(w + 1) % nodes];
        mem.store_u64(node_addr(from), node_addr(to).value());
    }

    // Chase.
    let mut current = node_addr(0);
    for _ in 0..hops {
        current = cnt_sim::Address::new(mem.load_u64(current));
    }

    // Self-check: after exactly `nodes` hops we are back at the head.
    if hops.is_multiple_of(nodes) {
        assert_eq!(current, node_addr(0), "pointer_chase self-check failed");
    } else {
        assert_eq!(
            current,
            node_addr(cycle[hops % nodes]),
            "pointer_chase self-check failed"
        );
    }

    Workload::new(
        "pointer_chase",
        format!("{hops} hops over a {nodes}-node shuffled circular list"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_is_read_only_after_init() {
        let nodes = 32;
        let w = pointer_chase(nodes, 100, 5);
        let writes = w.trace.iter().filter(|a| a.is_write()).count();
        assert_eq!(writes, nodes);
        assert_eq!(w.trace.len(), nodes + 100);
    }

    #[test]
    fn footprint_is_one_line_per_node() {
        let w = pointer_chase(16, 64, 6);
        assert_eq!(w.trace.footprint_blocks(), 16);
    }
}

//! STREAM-triad-style bandwidth kernel.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// STREAM triad: `a[i] = b[i] + s · c[i]` over `n` 64-bit elements,
/// repeated `reps` times.
///
/// Pure streaming with a fixed 2-reads-1-write mix and no temporal reuse
/// within a pass — the classic bandwidth workload. `b` holds small
/// (sparse-bit) operands, `c` dense random ones, so the read stream mixes
/// both densities line by line.
///
/// # Panics
///
/// Panics if `n` or `reps` is zero, or the output disagrees with an
/// untraced reference (self-check).
pub fn stream_triad(n: usize, reps: usize, seed: u64) -> Workload {
    assert!(n > 0 && reps > 0, "stream_triad needs n > 0 and reps > 0");
    let mut mem = TracedMemory::new();
    let a = mem.alloc((n * 8) as u64);
    let b = mem.alloc((n * 8) as u64);
    let c = mem.alloc((n * 8) as u64);
    let scalar = 3u64;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ref_b = Vec::with_capacity(n);
    let mut ref_c = Vec::with_capacity(n);
    for i in 0..n {
        let bv = u64::from(rng.gen::<u16>()); // small: sparse upper bits
        let cv: u64 = rng.gen(); // dense
        ref_b.push(bv);
        ref_c.push(cv);
        mem.store_u64(b + (i * 8) as u64, bv);
        mem.store_u64(c + (i * 8) as u64, cv);
    }

    for _ in 0..reps {
        for i in 0..n {
            let bv = mem.load_u64(b + (i * 8) as u64);
            let cv = mem.load_u64(c + (i * 8) as u64);
            mem.store_u64(a + (i * 8) as u64, bv.wrapping_add(scalar.wrapping_mul(cv)));
        }
    }

    for i in (0..n).step_by(n.div_ceil(16).max(1)) {
        let expect = ref_b[i].wrapping_add(scalar.wrapping_mul(ref_c[i]));
        assert_eq!(
            mem.peek_u64(a + (i * 8) as u64),
            expect,
            "stream_triad self-check failed at {i}"
        );
    }

    Workload::new(
        "stream_triad",
        format!("a[i] = b[i] + {scalar}*c[i] over {n} u64 elements, {reps} pass(es)"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_mix_is_two_reads_one_write() {
        let n = 256;
        let w = stream_triad(n, 2, 3);
        let demand = &w.trace.as_slice()[2 * n..];
        let writes = demand.iter().filter(|a| a.is_write()).count();
        assert_eq!(writes * 3, demand.len(), "1 write per 2 reads");
    }

    #[test]
    fn trace_length() {
        let w = stream_triad(64, 3, 4);
        assert_eq!(w.trace.len(), 2 * 64 + 3 * 64 * 3);
    }
}

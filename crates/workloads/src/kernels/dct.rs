//! Blocked 8x8 fixed-point DCT (JPEG-style compression front end).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Fixed-point cosine table, Q8 (value = round(cos(pi/16 * (2x+1) * u) * 256)).
const COS_Q8: [[i32; 8]; 8] = [
    [256, 256, 256, 256, 256, 256, 256, 256],
    [251, 213, 142, 50, -50, -142, -213, -251],
    [237, 98, -98, -237, -237, -98, 98, 237],
    [213, -50, -251, -142, 142, 251, 50, -213],
    [181, -181, -181, 181, 181, -181, -181, 181],
    [142, -251, 50, 213, -213, -50, 251, -142],
    [98, -237, 237, -98, -98, 237, -237, 98],
    [50, -142, 213, -251, 251, -213, 142, -50],
];

/// Row-wise 1-D DCT over every 8x8 block of a `blocks_x × blocks_y`-block
/// 8-bit image, storing Q8 coefficients.
///
/// The signal-processing workload shape: tiny hot coefficient table,
/// streaming pixel reads, moderate-magnitude signed outputs.
///
/// # Panics
///
/// Panics if the block grid is empty or a sampled coefficient disagrees
/// with an untraced reference (self-check).
pub fn dct8x8(blocks_x: usize, blocks_y: usize, seed: u64) -> Workload {
    assert!(blocks_x > 0 && blocks_y > 0, "dct needs at least one block");
    let width = blocks_x * 8;
    let height = blocks_y * 8;
    let mut mem = TracedMemory::new();
    let pixels = mem.alloc((width * height) as u64);
    let table = mem.alloc((8 * 8 * 4) as u64);
    let coeffs = mem.alloc((width * height * 4) as u64);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ref_pixels = vec![0u8; width * height];
    for (i, p) in ref_pixels.iter_mut().enumerate() {
        *p = rng.gen();
        mem.store_u8(pixels + i as u64, *p);
    }
    for (u, row) in COS_Q8.iter().enumerate() {
        for (x, &c) in row.iter().enumerate() {
            mem.store_u32(table + ((u * 8 + x) * 4) as u64, c as u32);
        }
    }

    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            for row in 0..8 {
                let y = by * 8 + row;
                for u in 0..8 {
                    let mut acc = 0i32;
                    for x in 0..8 {
                        let p = mem.load_u8(pixels + (y * width + bx * 8 + x) as u64) as i32;
                        let c = mem.load_u32(table + ((u * 8 + x) * 4) as u64) as i32;
                        acc = acc.wrapping_add((p - 128).wrapping_mul(c));
                    }
                    let index = (y * width + bx * 8 + u) * 4;
                    mem.store_u32(coeffs + index as u64, (acc >> 8) as u32);
                }
            }
        }
    }

    // Self-check a sample of coefficients against an untraced reference.
    let mut check = |bx: usize, y: usize, u: usize| {
        let mut acc = 0i32;
        for x in 0..8 {
            let p = ref_pixels[y * width + bx * 8 + x] as i32;
            acc = acc.wrapping_add((p - 128).wrapping_mul(COS_Q8[u][x]));
        }
        let expect = (acc >> 8) as u32;
        let addr = coeffs + ((y * width + bx * 8 + u) * 4) as u64;
        let word = mem.peek_u64(addr.align_down(8));
        let got = if addr.is_aligned(8) {
            word as u32
        } else {
            (word >> 32) as u32
        };
        assert_eq!(
            got, expect,
            "dct self-check failed at block x={bx}, y={y}, u={u}"
        );
    };
    check(0, 0, 0);
    check(blocks_x - 1, height - 1, 7);
    check(blocks_x / 2, height / 2, 3);

    Workload::new(
        "dct8x8",
        format!("row-wise 8x8 fixed-point DCT over a {width}x{height} image"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_is_read_heavy_with_hot_table() {
        let w = dct8x8(4, 4, 7);
        let wf = w.trace.write_fraction();
        assert!(wf < 0.3, "write fraction {wf}");
    }

    #[test]
    fn trace_length_matches_shape() {
        let (bx, by) = (2usize, 2usize);
        let w = dct8x8(bx, by, 8);
        let pixels = bx * by * 64;
        // init pixels + 64 table writes; per output coeff: 16 reads + 1 write.
        assert_eq!(w.trace.len(), pixels + 64 + pixels * 17);
    }
}

//! Naive substring search over ASCII text.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Counts occurrences of a pattern in random lowercase ASCII text with a
/// naive scan.
///
/// Read-only byte traffic over data whose upper bits are always zero
/// (ASCII): a strongly zero-skewed, read-intensive workload — the best
/// case for storing lines inverted.
///
/// # Panics
///
/// Panics if `text_len <= pattern_len`, `pattern_len` is zero, or the
/// traced scan disagrees with an untraced reference count (self-check).
pub fn string_search(text_len: usize, pattern_len: usize, seed: u64) -> Workload {
    assert!(pattern_len > 0, "pattern must be non-empty");
    assert!(
        text_len > pattern_len,
        "text must be longer than the pattern"
    );
    let mut mem = TracedMemory::new();
    let text = mem.alloc(text_len as u64);
    let pattern = mem.alloc(pattern_len as u64);

    // Lowercase ASCII text from a tiny alphabet so matches actually occur.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reference_text = Vec::with_capacity(text_len);
    for i in 0..text_len {
        let ch = b'a' + (rng.gen::<u8>() % 4);
        reference_text.push(ch);
        mem.store_u8(text + i as u64, ch);
    }
    // Take the pattern from the middle of the text: at least one match.
    let start = text_len / 2;
    let mut reference_pattern = Vec::with_capacity(pattern_len);
    for j in 0..pattern_len {
        let ch = reference_text[start + j];
        reference_pattern.push(ch);
        mem.store_u8(pattern + j as u64, ch);
    }

    let mut matches = 0usize;
    for i in 0..=text_len - pattern_len {
        let mut hit = true;
        for j in 0..pattern_len {
            let t = mem.load_u8(text + (i + j) as u64);
            let p = mem.load_u8(pattern + j as u64);
            if t != p {
                hit = false;
                break;
            }
        }
        if hit {
            matches += 1;
        }
    }

    // Self-check against an untraced scan.
    let expect = reference_text
        .windows(pattern_len)
        .filter(|w| *w == reference_pattern.as_slice())
        .count();
    assert_eq!(matches, expect, "string_search self-check failed");
    assert!(matches >= 1, "pattern taken from the text must occur");

    Workload::new(
        "string_search",
        format!("naive search of a {pattern_len}-byte pattern in {text_len} bytes of ASCII"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_read_dominated() {
        // The only writes are the init phase (text + pattern); the scan
        // itself is pure reads.
        let w = string_search(1024, 8, 1);
        assert!(w.trace.write_fraction() < 0.35);
        let scan = &w.trace.as_slice()[1024 + 8..];
        assert!(scan.iter().all(|a| !a.is_write()));
    }

    #[test]
    fn ascii_values_are_zero_skewed() {
        let w = string_search(256, 4, 2);
        // Every traced write is an ASCII byte: value < 128.
        for a in w.trace.iter().filter(|a| a.is_write()) {
            assert!(a.value < 128);
        }
    }
}

//! Sparse matrix-vector multiply with an interleaved element layout.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// CSR-like sparse matrix-vector multiply, `rows` rows with `nnz_per_row`
/// non-zeros each, over an *interleaved* element layout: each non-zero is
/// a 16-byte record `[column index (small word), value (dense word)]`.
///
/// This is the real-program counterpart of the striped synthetic
/// workload: every cache line alternates sparse index words with dense
/// value words, so no single inversion direction suits a line —
/// partitioned encoding's home turf (Fig. 2).
///
/// # Panics
///
/// Panics if `rows` or `nnz_per_row` is zero, or the result vector
/// disagrees with an untraced reference (self-check).
pub fn spmv(rows: usize, nnz_per_row: usize, seed: u64) -> Workload {
    assert!(
        rows > 0 && nnz_per_row > 0,
        "spmv needs rows > 0 and nnz_per_row > 0"
    );
    let nnz = rows * nnz_per_row;
    let mut mem = TracedMemory::new();
    let elements = mem.alloc((nnz * 16) as u64); // interleaved [idx, value]
    let x = mem.alloc((rows * 8) as u64);
    let y = mem.alloc((rows * 8) as u64);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ref_idx = Vec::with_capacity(nnz);
    let mut ref_val = Vec::with_capacity(nnz);
    let mut ref_x = Vec::with_capacity(rows);

    for e in 0..nnz {
        let col = rng.gen_range(0..rows) as u64; // small: sparse bits
        let val: u64 = rng.gen(); // dense bits (simulated double)
        ref_idx.push(col);
        ref_val.push(val);
        mem.store_u64(elements + (e * 16) as u64, col);
        mem.store_u64(elements + (e * 16 + 8) as u64, val);
    }
    for r in 0..rows {
        let v: u64 = rng.gen();
        ref_x.push(v);
        mem.store_u64(x + (r * 8) as u64, v);
    }

    for r in 0..rows {
        let mut acc = 0u64;
        for k in 0..nnz_per_row {
            let e = r * nnz_per_row + k;
            let col = mem.load_u64(elements + (e * 16) as u64) as usize;
            let val = mem.load_u64(elements + (e * 16 + 8) as u64);
            let xv = mem.load_u64(x + (col * 8) as u64);
            acc = acc.wrapping_add(val.wrapping_mul(xv));
        }
        mem.store_u64(y + (r * 8) as u64, acc);
    }

    // Self-check against an untraced reference.
    for r in 0..rows {
        let mut expect = 0u64;
        for k in 0..nnz_per_row {
            let e = r * nnz_per_row + k;
            expect = expect.wrapping_add(ref_val[e].wrapping_mul(ref_x[ref_idx[e] as usize]));
        }
        assert_eq!(
            mem.peek_u64(y + (r * 8) as u64),
            expect,
            "spmv self-check failed at row {r}"
        );
    }

    Workload::new(
        "spmv",
        format!("{rows}x{rows} SpMV, {nnz_per_row} nnz/row, interleaved idx/value layout"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_heterogeneous() {
        let w = spmv(64, 8, 1);
        // Element-array writes alternate sparse (index) and dense (value)
        // words: measure their densities separately.
        let writes: Vec<u64> = w
            .trace
            .iter()
            .filter(|a| a.is_write())
            .map(|a| a.value)
            .take(2 * 64 * 8)
            .collect();
        let idx_density: f64 = writes
            .iter()
            .step_by(2)
            .map(|v| v.count_ones() as f64)
            .sum::<f64>()
            / (writes.len() as f64 / 2.0 * 64.0);
        let val_density: f64 = writes
            .iter()
            .skip(1)
            .step_by(2)
            .map(|v| v.count_ones() as f64)
            .sum::<f64>()
            / (writes.len() as f64 / 2.0 * 64.0);
        assert!(
            idx_density < 0.1,
            "index words must be sparse: {idx_density}"
        );
        assert!(
            (val_density - 0.5).abs() < 0.05,
            "value words must be dense: {val_density}"
        );
    }

    #[test]
    fn trace_shape() {
        let (rows, nnz) = (16, 4);
        let w = spmv(rows, nnz, 2);
        // init: 2*nnz_total + rows writes; compute: rows*nnz*(3 reads) + rows writes.
        let nnz_total = rows * nnz;
        assert_eq!(w.trace.len(), 2 * nnz_total + rows + nnz_total * 3 + rows);
    }
}

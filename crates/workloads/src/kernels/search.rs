//! Batched binary search over a sorted array.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// `probes` binary searches over a sorted array of `n` 64-bit keys.
///
/// Pure read traffic with poor spatial locality in the early probe steps
/// and a hot root region — a read-intensive pattern with skewed line
/// popularity.
///
/// # Panics
///
/// Panics if `n` or `probes` is zero, or a search returns a wrong index
/// (self-check).
pub fn binary_search(n: usize, probes: usize, seed: u64) -> Workload {
    assert!(
        n > 0 && probes > 0,
        "binary_search needs n > 0 and probes > 0"
    );
    let mut mem = TracedMemory::new();
    let arr = mem.alloc((n * 8) as u64);
    let at = |i: usize| arr + (i * 8) as u64;

    for i in 0..n {
        mem.store_u64(at(i), (i as u64) * 3);
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..probes {
        let target_index = rng.gen_range(0..n);
        let target = (target_index as u64) * 3;
        let (mut lo, mut hi) = (0usize, n);
        let mut found = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = mem.load_u64(at(mid));
            if v == target {
                found = Some(mid);
                break;
            } else if v < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        assert_eq!(found, Some(target_index), "binary_search self-check failed");
    }

    Workload::new(
        "binary_search",
        format!("{probes} binary searches over {n} sorted u64 keys"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_logarithmic() {
        let n = 1024;
        let w = binary_search(n, 10, 3);
        let compute = w.trace.len() - n; // minus init writes
        assert!(
            compute <= 10 * 11,
            "at most ~log2(n) reads per probe: {compute}"
        );
        assert!(compute >= 10, "at least one read per probe");
    }

    #[test]
    fn search_phase_is_read_only() {
        let n = 64;
        let w = binary_search(n, 16, 4);
        let writes = w.trace.iter().filter(|a| a.is_write()).count();
        assert_eq!(writes, n, "only the init phase writes");
    }
}

//! Hash mixing over dense random data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Accumulates an xorshift-style digest over `n` dense random words,
/// storing the running digest every eight elements.
///
/// The adversarial workload for inversion coding: data is ≈50 % ones, so
/// no encoding direction helps. CNT-Cache must recognize this and leave
/// the lines alone (paying only its metadata overhead).
///
/// # Panics
///
/// Panics if `n` is zero or the digest disagrees with an untraced
/// reference (self-check).
pub fn hash_mix(n: usize, seed: u64) -> Workload {
    assert!(n > 0, "hash_mix needs input");
    let mut mem = TracedMemory::new();
    let data = mem.alloc((n * 8) as u64);
    let digests = mem.alloc((n.div_ceil(8) * 8) as u64);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reference = Vec::with_capacity(n);
    for i in 0..n {
        let v: u64 = rng.gen();
        reference.push(v);
        mem.store_u64(data + (i * 8) as u64, v);
    }

    let mix = |mut h: u64, v: u64| {
        h ^= v;
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        h
    };

    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut stored = 0usize;
    for i in 0..n {
        let v = mem.load_u64(data + (i * 8) as u64);
        digest = mix(digest, v);
        if (i + 1) % 8 == 0 {
            mem.store_u64(digests + (stored * 8) as u64, digest);
            stored += 1;
        }
    }

    // Self-check.
    let mut expect = 0xCBF2_9CE4_8422_2325u64;
    let mut expect_last_stored = None;
    for (i, &v) in reference.iter().enumerate() {
        expect = mix(expect, v);
        if (i + 1) % 8 == 0 {
            expect_last_stored = Some(expect);
        }
    }
    if let Some(e) = expect_last_stored {
        let got = mem.peek_u64(digests + ((stored - 1) * 8) as u64);
        assert_eq!(got, e, "hash_mix self-check failed");
    }

    Workload::new(
        "hash_mix",
        format!("xorshift digest over {n} dense random u64 words"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_bit_dense() {
        let w = hash_mix(128, 7);
        let ones: u64 = w
            .trace
            .iter()
            .filter(|a| a.is_write())
            .map(|a| u64::from(a.value.count_ones()))
            .sum();
        let writes = w.trace.iter().filter(|a| a.is_write()).count() as u64;
        let density = ones as f64 / (writes * 64) as f64;
        assert!((density - 0.5).abs() < 0.05, "density {density}");
    }

    #[test]
    fn trace_length() {
        let w = hash_mix(64, 8);
        assert_eq!(w.trace.len(), 64 + 64 + 8); // init + loads + digest stores
    }
}

//! Image binarization (thresholding).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Thresholds a `width × height` 8-bit image: pixels above 127 become
/// 255, the rest 0.
///
/// The output stream is extreme in bit terms — every written byte is
/// either all-ones or all-zeros — so the write-side encoding preference
/// flips line by line with image content.
///
/// # Panics
///
/// Panics if the image is empty or the output histogram disagrees with an
/// untraced reference (self-check).
pub fn image_threshold(width: usize, height: usize, seed: u64) -> Workload {
    assert!(width > 0 && height > 0, "image must be non-empty");
    let n = width * height;
    let mut mem = TracedMemory::new();
    let input = mem.alloc(n as u64);
    let output = mem.alloc(n as u64);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut expect_white = 0usize;
    for i in 0..n {
        let p: u8 = rng.gen();
        if p > 127 {
            expect_white += 1;
        }
        mem.store_u8(input + i as u64, p);
    }

    for i in 0..n {
        let p = mem.load_u8(input + i as u64);
        let out = if p > 127 { 255u8 } else { 0u8 };
        mem.store_u8(output + i as u64, out);
    }

    // Self-check: count white pixels via untraced peeks.
    let mut white = 0usize;
    for i in 0..n {
        if mem.peek_u8(output + i as u64) == 255 {
            white += 1;
        }
    }
    assert_eq!(white, expect_white, "image_threshold self-check failed");

    Workload::new(
        "image_threshold",
        format!("binarization of a {width}x{height} 8-bit image"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_bytes_are_extreme() {
        let w = image_threshold(16, 16, 9);
        let n = 16 * 16;
        // Writes after the init phase are all 0 or 255.
        for a in w.trace.iter().filter(|a| a.is_write()).skip(n) {
            assert!(a.value == 0 || a.value == 255, "value {:#x}", a.value);
        }
    }

    #[test]
    fn balanced_read_write_mix() {
        let w = image_threshold(16, 16, 10);
        let wf = w.trace.write_fraction();
        assert!((wf - 2.0 / 3.0).abs() < 0.01, "write fraction {wf}");
    }
}

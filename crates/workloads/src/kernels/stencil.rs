//! Five-point 2-D stencil smoothing.

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// `iters` Jacobi sweeps of a 5-point averaging stencil over a
/// `width × height` grid of `u32` cells (ping-pong buffers).
///
/// Read-heavy with spatial locality: each interior cell reads five
/// neighbours and writes once per sweep.
///
/// # Panics
///
/// Panics if the grid is smaller than 3×3, `iters` is zero, or the
/// self-check fails.
pub fn stencil2d(width: usize, height: usize, iters: usize) -> Workload {
    assert!(
        width >= 3 && height >= 3,
        "stencil needs at least a 3x3 grid"
    );
    assert!(iters > 0, "stencil needs at least one sweep");
    let mut mem = TracedMemory::new();
    let bytes = (width * height * 4) as u64;
    let mut src = mem.alloc(bytes);
    let mut dst = mem.alloc(bytes);
    let at = |base: cnt_sim::Address, x: usize, y: usize| base + ((y * width + x) * 4) as u64;

    // A smooth deterministic initial field with small values.
    for y in 0..height {
        for x in 0..width {
            mem.store_u32(at(src, x, y), ((x * 3 + y * 5) % 97) as u32);
            mem.store_u32(at(dst, x, y), 0);
        }
    }

    for _ in 0..iters {
        for y in 1..height - 1 {
            for x in 1..width - 1 {
                let c = mem.load_u32(at(src, x, y));
                let l = mem.load_u32(at(src, x - 1, y));
                let r = mem.load_u32(at(src, x + 1, y));
                let u = mem.load_u32(at(src, x, y - 1));
                let d = mem.load_u32(at(src, x, y + 1));
                mem.store_u32(at(dst, x, y), (c + l + r + u + d) / 5);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }

    // Self-check: one sweep of the reference field, checked after the
    // first iteration only (tractable closed form).
    // Instead verify a conservation-style invariant: all interior cells
    // remain bounded by the initial extrema.
    for y in 1..height - 1 {
        for x in 1..width - 1 {
            let addr = at(src, x, y);
            let word = mem.peek_u64(addr.align_down(8));
            let v = if addr.is_aligned(8) {
                word as u32
            } else {
                (word >> 32) as u32
            };
            assert!(
                v <= 96,
                "stencil self-check: averaging exceeded extrema at ({x},{y})"
            );
        }
    }

    Workload::new(
        "stencil2d",
        format!("{iters} 5-point sweeps over a {width}x{height} u32 grid"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_is_read_heavy() {
        let w = stencil2d(16, 16, 2);
        let wf = w.trace.write_fraction();
        assert!(wf < 0.45, "write fraction {wf}");
    }

    #[test]
    fn trace_length_matches_shape() {
        let (w, h, it) = (8usize, 8usize, 1usize);
        let workload = stencil2d(w, h, it);
        let interior = (w - 2) * (h - 2);
        assert_eq!(workload.trace.len(), 2 * w * h + it * interior * 6);
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_grid_panics() {
        stencil2d(2, 8, 1);
    }
}

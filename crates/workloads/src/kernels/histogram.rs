//! Byte histogram with hot read-modify-write bins.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::Workload;
use crate::traced::TracedMemory;

/// Histograms `n` random bytes into `bins` 32-bit counters.
///
/// The bin array is small and hot: every input byte triggers a
/// read-modify-write on it, making the bin lines strongly write-intensive
/// while the input stream is read-only.
///
/// # Panics
///
/// Panics if `n` is zero, `bins` is zero or not a power of two, or the
/// counters do not sum to `n` afterwards (self-check).
pub fn histogram(n: usize, bins: usize, seed: u64) -> Workload {
    assert!(n > 0, "histogram needs input");
    assert!(
        bins > 0 && bins.is_power_of_two(),
        "bins must be a non-zero power of two"
    );
    let mut mem = TracedMemory::new();
    let data = mem.alloc(n as u64);
    let counts = mem.alloc((bins * 4) as u64);

    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        mem.store_u8(data + i as u64, rng.gen());
    }

    for i in 0..n {
        let byte = mem.load_u8(data + i as u64);
        let bin = (byte as usize) & (bins - 1);
        let addr = counts + (bin * 4) as u64;
        let c = mem.load_u32(addr);
        mem.store_u32(addr, c + 1);
    }

    // Self-check: counters sum to n.
    let mut total = 0u64;
    for b in 0..bins {
        let addr = counts + (b * 4) as u64;
        let word = mem.peek_u64(addr.align_down(8));
        let c = if addr.is_aligned(8) {
            word as u32
        } else {
            (word >> 32) as u32
        };
        total += u64::from(c);
    }
    assert_eq!(total, n as u64, "histogram self-check: counts lost");

    Workload::new(
        "histogram",
        format!("{bins}-bin byte histogram over {n} bytes"),
        mem.into_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_rmw_pattern() {
        let n = 256;
        let w = histogram(n, 16, 2);
        // n byte writes (init) + n reads + n (read+write) on bins.
        assert_eq!(w.trace.len(), n + 3 * n);
        let wf = w.trace.write_fraction();
        assert!((wf - 0.5).abs() < 0.01, "write fraction {wf}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_bin_count_panics() {
        histogram(16, 3, 0);
    }
}

//! Parametric synthetic trace generators.
//!
//! These isolate the two axes the adaptive encoding responds to — the
//! read/write mix and the bit density of the data — so the experiment
//! harness can sweep them independently (the crossover study, `fig8`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;

/// How synthetic accesses pick their target line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Round-robin over the footprint.
    Sequential,
    /// Round-robin with a fixed line stride.
    Strided {
        /// Stride in lines (must be non-zero).
        stride_lines: u32,
    },
    /// Uniformly random lines.
    UniformRandom,
    /// Zipf-distributed line popularity with exponent `theta`.
    Zipfian {
        /// Skew exponent; 0 = uniform, ≈1 = classic web-like skew.
        theta: f64,
    },
}

/// Specification of one synthetic trace.
///
/// # Example
///
/// ```
/// use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
///
/// let trace = SyntheticSpec {
///     accesses: 1000,
///     footprint_lines: 16,
///     read_fraction: 0.9,
///     ones_density: 0.1,
///     pattern: AddressPattern::Sequential,
///     seed: 1,
/// }
/// .generate();
/// assert_eq!(trace.footprint_blocks(), 16);
/// // Init writes push the write fraction slightly above 10%.
/// assert!(trace.write_fraction() < 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of demand accesses (excluding the per-line init writes).
    pub accesses: usize,
    /// Working-set size in 64-byte lines.
    pub footprint_lines: usize,
    /// Fraction of the demand accesses that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Probability that any written data bit is `1`, in `[0, 1]`.
    pub ones_density: f64,
    /// Line-selection pattern.
    pub pattern: AddressPattern,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            accesses: 10_000,
            footprint_lines: 64,
            read_fraction: 0.7,
            ones_density: 0.25,
            pattern: AddressPattern::Sequential,
            seed: 0xC47,
        }
    }
}

/// Synthetic traces place their footprint at this base address.
const BASE: u64 = 0x0100_0000;

impl SyntheticSpec {
    /// Generates the trace: one initializing write per line (so reads see
    /// density-distributed data), then `accesses` demand accesses.
    ///
    /// Materializes [`stream`](Self::stream) — the two produce the exact
    /// same access sequence.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero, a fraction is outside
    /// `[0, 1]`, or a strided pattern has a zero stride.
    pub fn generate(&self) -> Trace {
        self.stream().collect()
    }

    /// Lazily yields the same sequence as [`generate`](Self::generate)
    /// without materializing it, so multi-GB traces can be packed (or
    /// replayed) in bounded memory:
    ///
    /// ```
    /// use cnt_workloads::synthetic::SyntheticSpec;
    ///
    /// let spec = SyntheticSpec::default();
    /// let streamed: Vec<_> = spec.stream().collect();
    /// assert_eq!(streamed.len(), spec.stream().len());
    /// assert_eq!(cnt_sim::trace::Trace::from_iter(streamed), spec.generate());
    /// ```
    ///
    /// # Panics
    ///
    /// As [`generate`](Self::generate).
    pub fn stream(&self) -> SyntheticStream {
        assert!(self.footprint_lines > 0, "footprint must be non-empty");
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.ones_density),
            "ones_density must be in [0, 1]"
        );
        if let AddressPattern::Strided { stride_lines } = self.pattern {
            assert!(stride_lines > 0, "stride must be non-zero");
        }
        let zipf_cdf = match self.pattern {
            AddressPattern::Zipfian { theta } => Some(zipf_cdf(self.footprint_lines, theta)),
            _ => None,
        };
        SyntheticStream {
            spec: *self,
            rng: SmallRng::seed_from_u64(self.seed),
            zipf_cdf,
            init_emitted: 0,
            demand_emitted: 0,
            cursor: 0,
        }
    }
}

/// Lazy iterator form of [`SyntheticSpec`]; see
/// [`SyntheticSpec::stream`]. Draws from the RNG in exactly the order
/// the eager generator did, so the sequence is byte-identical.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    spec: SyntheticSpec,
    rng: SmallRng,
    zipf_cdf: Option<Vec<f64>>,
    init_emitted: usize,
    demand_emitted: usize,
    cursor: usize,
}

impl Iterator for SyntheticStream {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        let spec = self.spec;
        // Phase 1: initialize every word of every line with
        // density-controlled data.
        if self.init_emitted < spec.footprint_lines * 8 {
            let line = (self.init_emitted / 8) as u64;
            let word = (self.init_emitted % 8) as u64;
            self.init_emitted += 1;
            let addr = Address::new(BASE + line * 64 + word * 8);
            return Some(MemoryAccess::write(
                addr,
                8,
                word_with_density(&mut self.rng, spec.ones_density),
            ));
        }
        // Phase 2: demand accesses.
        if self.demand_emitted >= spec.accesses {
            return None;
        }
        self.demand_emitted += 1;
        let line = match spec.pattern {
            AddressPattern::Sequential => {
                let l = self.cursor % spec.footprint_lines;
                self.cursor += 1;
                l
            }
            AddressPattern::Strided { stride_lines } => {
                let l = self.cursor % spec.footprint_lines;
                self.cursor = self.cursor.wrapping_add(stride_lines as usize);
                l
            }
            AddressPattern::UniformRandom => self.rng.gen_range(0..spec.footprint_lines),
            AddressPattern::Zipfian { .. } => {
                let cdf = self.zipf_cdf.as_ref().expect("cdf precomputed");
                let u: f64 = self.rng.gen();
                cdf.partition_point(|&c| c < u)
                    .min(spec.footprint_lines - 1)
            }
        };
        let word = self.rng.gen_range(0..8u64);
        let addr = Address::new(BASE + (line as u64) * 64 + word * 8);
        Some(if self.rng.gen_bool(spec.read_fraction) {
            MemoryAccess::read(addr, 8)
        } else {
            MemoryAccess::write(addr, 8, word_with_density(&mut self.rng, spec.ones_density))
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.spec.footprint_lines * 8 - self.init_emitted)
            + (self.spec.accesses - self.demand_emitted);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SyntheticStream {}

/// A heterogeneous-line generator: each 64-byte line holds eight words
/// with per-word one-bit densities — e.g. records interleaving sparse ids
/// with dense hashes. This is the workload class where *partitioned*
/// encoding (Fig. 2) beats full-line inversion: no single direction suits
/// the whole line.
///
/// # Example
///
/// ```
/// use cnt_workloads::synthetic::StripedSpec;
///
/// let trace = StripedSpec {
///     accesses: 500,
///     footprint_lines: 8,
///     read_fraction: 1.0,
///     densities: [0.05, 0.05, 0.05, 0.05, 0.75, 0.75, 0.75, 0.75],
///     seed: 7,
/// }
/// .generate();
/// assert_eq!(trace.footprint_blocks(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StripedSpec {
    /// Number of demand accesses (excluding init writes).
    pub accesses: usize,
    /// Working-set size in 64-byte lines.
    pub footprint_lines: usize,
    /// Fraction of demand accesses that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Per-word one-bit density within each line.
    pub densities: [f64; 8],
    /// RNG seed.
    pub seed: u64,
}

impl StripedSpec {
    /// Generates the trace: per-word-density init writes, then uniform
    /// random demand accesses whose writes respect the word's density.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero or any fraction is outside
    /// `[0, 1]`.
    pub fn generate(&self) -> Trace {
        assert!(self.footprint_lines > 0, "footprint must be non-empty");
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        for &d in &self.densities {
            assert!((0.0..=1.0).contains(&d), "density must be in [0, 1]");
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trace = Trace::new();
        for line in 0..self.footprint_lines {
            for (word, &density) in self.densities.iter().enumerate() {
                let addr = Address::new(BASE + (line as u64) * 64 + (word as u64) * 8);
                trace.push(MemoryAccess::write(
                    addr,
                    8,
                    word_with_density(&mut rng, density),
                ));
            }
        }
        for _ in 0..self.accesses {
            let line = rng.gen_range(0..self.footprint_lines);
            let word = rng.gen_range(0..8usize);
            let addr = Address::new(BASE + (line as u64) * 64 + (word as u64) * 8);
            if rng.gen_bool(self.read_fraction) {
                trace.push(MemoryAccess::read(addr, 8));
            } else {
                trace.push(MemoryAccess::write(
                    addr,
                    8,
                    word_with_density(&mut rng, self.densities[word]),
                ));
            }
        }
        trace
    }
}

/// Draws a 64-bit word whose bits are independently `1` with probability
/// `density`.
pub fn word_with_density(rng: &mut SmallRng, density: f64) -> u64 {
    if density <= 0.0 {
        return 0;
    }
    if density >= 1.0 {
        return u64::MAX;
    }
    let mut word = 0u64;
    for bit in 0..64 {
        if rng.gen_bool(density) {
            word |= 1 << bit;
        }
    }
    word
}

fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_controls_written_bits() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &d in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let ones: u32 = (0..64)
                .map(|_| word_with_density(&mut rng, d).count_ones())
                .sum();
            let measured = f64::from(ones) / (64.0 * 64.0);
            assert!(
                (measured - d).abs() < 0.08,
                "density {d}: measured {measured}"
            );
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = SyntheticSpec {
            accesses: 20_000,
            read_fraction: 0.8,
            ..SyntheticSpec::default()
        };
        let trace = spec.generate();
        let init = spec.footprint_lines * 8;
        let demand = &trace.as_slice()[init..];
        let writes = demand.iter().filter(|a| a.is_write()).count();
        let wf = writes as f64 / demand.len() as f64;
        assert!((wf - 0.2).abs() < 0.02, "write fraction {wf}");
    }

    #[test]
    fn footprint_is_exact() {
        for pattern in [
            AddressPattern::Sequential,
            AddressPattern::Strided { stride_lines: 3 },
            AddressPattern::UniformRandom,
            AddressPattern::Zipfian { theta: 0.9 },
        ] {
            let spec = SyntheticSpec {
                accesses: 5_000,
                footprint_lines: 32,
                pattern,
                ..SyntheticSpec::default()
            };
            assert_eq!(spec.generate().footprint_blocks(), 32, "{pattern:?}");
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let spec = SyntheticSpec {
            accesses: 20_000,
            footprint_lines: 64,
            pattern: AddressPattern::Zipfian { theta: 1.0 },
            read_fraction: 1.0,
            ..SyntheticSpec::default()
        };
        let trace = spec.generate();
        let init = spec.footprint_lines * 8;
        let mut counts = vec![0usize; 64];
        for a in &trace.as_slice()[init..] {
            counts[((a.addr.value() - BASE) / 64) as usize] += 1;
        }
        assert!(
            counts[0] > counts[32] * 4,
            "head line must dominate: {} vs {}",
            counts[0],
            counts[32]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::default();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn stream_is_identical_to_generate_for_every_pattern() {
        for pattern in [
            AddressPattern::Sequential,
            AddressPattern::Strided { stride_lines: 5 },
            AddressPattern::UniformRandom,
            AddressPattern::Zipfian { theta: 0.8 },
        ] {
            let spec = SyntheticSpec {
                accesses: 3_000,
                footprint_lines: 48,
                read_fraction: 0.6,
                ones_density: 0.3,
                pattern,
                seed: 0xBEEF,
            };
            let stream = spec.stream();
            assert_eq!(stream.len(), 48 * 8 + 3_000, "{pattern:?}");
            let streamed: Trace = stream.collect();
            assert_eq!(streamed, spec.generate(), "{pattern:?}");
        }
    }

    #[test]
    #[should_panic(expected = "read_fraction")]
    fn bad_fraction_panics() {
        SyntheticSpec {
            read_fraction: 1.5,
            ..SyntheticSpec::default()
        }
        .generate();
    }
}

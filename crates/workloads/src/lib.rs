//! Benchmark kernels and synthetic trace generators for the CNT-Cache
//! reproduction.
//!
//! The original paper evaluates "a set of benchmark programs" on a
//! simulated D-Cache. Since its traces are not available, this crate
//! substitutes *instrumented Rust kernels*: each kernel executes a real
//! algorithm against a [`TracedMemory`], verifying its own output, while
//! every load and store — with its actual data value — is recorded into a
//! [`Trace`](cnt_sim::trace::Trace). This preserves the two properties the
//! adaptive-encoding result depends on: per-line read/write mixes and the
//! bit-value population of the data.
//!
//! * [`kernels`] — ten program kernels (matmul, FIR, quicksort, histogram,
//!   stencil, string search, binary search, pointer chase, hash mixing,
//!   image threshold),
//! * [`synthetic`] — parametric generators (sequential/strided/random/
//!   Zipfian; read-fraction and bit-density sweeps),
//! * [`suite`] — the named benchmark suite the experiment harness runs,
//!   plus the [`WorkloadRegistry`]: one `synth/*` + `import/*` namespace
//!   over kernels and imported `.ctr` captures, selectable by glob.
//!
//! # Example
//!
//! ```
//! use cnt_workloads::kernels;
//!
//! let workload = kernels::matmul(8, 1);
//! assert_eq!(workload.name, "matmul");
//! assert!(workload.trace.len() > 0);
//! assert!(workload.trace.write_fraction() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod suite;
pub mod synthetic;
mod traced;

pub use suite::{
    glob_match, suite, suite_extended, suite_seeded, suite_small, RegistryError, Workload,
    WorkloadEntry, WorkloadRegistry, WorkloadSource,
};
pub use traced::TracedMemory;

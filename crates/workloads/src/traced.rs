//! [`TracedMemory`]: a memory that records every access it serves.

use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::{Address, MainMemory};

/// A word-addressable memory that executes real kernel accesses while
/// recording each one — with its data value — into a [`Trace`].
///
/// Kernels allocate regions with [`alloc`](TracedMemory::alloc), run their
/// algorithm through the typed load/store methods, verify their results
/// via the untraced [`peek_u64`](TracedMemory::peek_u64), and finally hand
/// the trace to the simulator with [`into_trace`](TracedMemory::into_trace).
///
/// # Example
///
/// ```
/// use cnt_workloads::TracedMemory;
///
/// let mut mem = TracedMemory::new();
/// let buf = mem.alloc(64);
/// mem.store_u64(buf, 42);
/// assert_eq!(mem.load_u64(buf), 42);
/// let trace = mem.into_trace();
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug)]
pub struct TracedMemory {
    memory: MainMemory,
    trace: Trace,
    cursor: u64,
}

/// Kernels allocate from this base so addresses look like a real heap.
const HEAP_BASE: u64 = 0x0010_0000;

impl TracedMemory {
    /// Creates an empty memory with an empty trace.
    pub fn new() -> Self {
        TracedMemory {
            memory: MainMemory::new(),
            trace: Trace::new(),
            cursor: HEAP_BASE,
        }
    }

    /// Reserves `bytes` of address space aligned to a cache line (64 B)
    /// and returns its base address. Allocation itself is not traced.
    pub fn alloc(&mut self, bytes: u64) -> Address {
        let base = self.cursor;
        self.cursor += bytes.div_ceil(64) * 64;
        Address::new(base)
    }

    /// Number of accesses recorded so far.
    pub fn recorded(&self) -> usize {
        self.trace.len()
    }

    /// Consumes the wrapper, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Loads a 64-bit word (traced).
    pub fn load_u64(&mut self, addr: Address) -> u64 {
        self.trace.push(MemoryAccess::read(addr, 8));
        self.memory.load(addr, 8)
    }

    /// Stores a 64-bit word (traced).
    pub fn store_u64(&mut self, addr: Address, value: u64) {
        self.trace.push(MemoryAccess::write(addr, 8, value));
        self.memory.store(addr, 8, value);
    }

    /// Loads a 32-bit word (traced).
    pub fn load_u32(&mut self, addr: Address) -> u32 {
        self.trace.push(MemoryAccess::read(addr, 4));
        self.memory.load(addr, 4) as u32
    }

    /// Stores a 32-bit word (traced).
    pub fn store_u32(&mut self, addr: Address, value: u32) {
        self.trace
            .push(MemoryAccess::write(addr, 4, u64::from(value)));
        self.memory.store(addr, 4, u64::from(value));
    }

    /// Loads one byte (traced).
    pub fn load_u8(&mut self, addr: Address) -> u8 {
        self.trace.push(MemoryAccess::read(addr, 1));
        self.memory.load(addr, 1) as u8
    }

    /// Stores one byte (traced).
    pub fn store_u8(&mut self, addr: Address, value: u8) {
        self.trace
            .push(MemoryAccess::write(addr, 1, u64::from(value)));
        self.memory.store(addr, 1, u64::from(value));
    }

    /// Reads a 64-bit word *without* tracing — for result verification.
    pub fn peek_u64(&mut self, addr: Address) -> u64 {
        self.memory.load(addr, 8)
    }

    /// Reads a byte *without* tracing — for result verification.
    pub fn peek_u8(&mut self, addr: Address) -> u8 {
        self.memory.load(addr, 1) as u8
    }
}

impl Default for TracedMemory {
    fn default() -> Self {
        TracedMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_sim::trace::AccessKind;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut mem = TracedMemory::new();
        let a = mem.alloc(100);
        let b = mem.alloc(1);
        let c = mem.alloc(64);
        assert!(a.is_aligned(64));
        assert!(b.is_aligned(64));
        assert_eq!(b - a, 128, "100 bytes round up to two lines");
        assert_eq!(c - b, 64);
    }

    #[test]
    fn traced_accesses_carry_values() {
        let mut mem = TracedMemory::new();
        let buf = mem.alloc(64);
        mem.store_u32(buf, 0xABCD);
        let v = mem.load_u32(buf);
        assert_eq!(v, 0xABCD);
        let trace = mem.into_trace();
        let w = &trace.as_slice()[0];
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.value, 0xABCD);
        assert_eq!(w.width, 4);
        assert_eq!(trace.as_slice()[1].kind, AccessKind::Read);
    }

    #[test]
    fn peek_does_not_trace() {
        let mut mem = TracedMemory::new();
        let buf = mem.alloc(64);
        mem.store_u64(buf, 7);
        let before = mem.recorded();
        assert_eq!(mem.peek_u64(buf), 7);
        assert_eq!(mem.peek_u8(buf), 7);
        assert_eq!(mem.recorded(), before);
    }

    #[test]
    fn byte_and_word_views_agree() {
        let mut mem = TracedMemory::new();
        let buf = mem.alloc(64);
        mem.store_u64(buf, 0x1122_3344_5566_7788);
        assert_eq!(mem.load_u8(buf), 0x88);
        assert_eq!(mem.load_u8(buf + 7), 0x11);
    }
}

//! The named benchmark suite used by the experiments.

use serde::{Deserialize, Serialize};

use cnt_sim::trace::Trace;

use crate::kernels;

/// One named, self-verified benchmark workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Short kernel name (e.g. `"matmul"`).
    pub name: String,
    /// Human-readable parameter description.
    pub description: String,
    /// The recorded data-carrying access trace.
    pub trace: Trace,
}

impl Workload {
    /// Bundles a verified trace with its identity.
    pub fn new(name: impl Into<String>, description: impl Into<String>, trace: Trace) -> Self {
        Workload {
            name: name.into(),
            description: description.into(),
            trace,
        }
    }
}

/// The full ten-kernel benchmark suite at the sizes the experiments use.
///
/// Footprints are chosen around the 32 KiB L1D of the paper's
/// configuration: some kernels fit comfortably (high hit rates), others
/// exceed it (binary search, pointer chase) to exercise fills, evictions
/// and write-backs.
///
/// # Example
///
/// ```no_run
/// let suite = cnt_workloads::suite();
/// assert_eq!(suite.len(), 10);
/// ```
pub fn suite() -> Vec<Workload> {
    vec![
        kernels::matmul(40, 1),
        kernels::fir(4096, 16),
        kernels::quicksort(2048, 0xC47),
        kernels::histogram(8192, 64, 0xC47),
        kernels::stencil2d(64, 48, 3),
        kernels::string_search(8192, 8, 0xC47),
        kernels::binary_search(4096, 2048, 0xC47),
        kernels::pointer_chase(1024, 8192, 0xC47),
        kernels::hash_mix(2048, 0xC47),
        kernels::image_threshold(96, 64, 0xC47),
    ]
}

/// The extended fourteen-kernel suite: the base [`suite`] plus SpMV
/// (whose interleaved index/value layout produces heterogeneous lines),
/// the STREAM triad, BFS, and the 8x8 DCT. Used by the partitioning and
/// write-policy studies.
pub fn suite_extended() -> Vec<Workload> {
    let mut s = suite();
    s.push(kernels::spmv(512, 12, 0xC47));
    s.push(kernels::stream_triad(4096, 4, 0xC47));
    s.push(kernels::bfs(2048, 4, 0xC47));
    s.push(kernels::dct8x8(8, 6, 0xC47));
    s
}

/// The base suite with every seeded kernel re-seeded (matmul, FIR and the
/// stencil generate structured data and are seed-independent). Used by
/// the seed-robustness study.
pub fn suite_seeded(seed: u64) -> Vec<Workload> {
    vec![
        kernels::matmul(40, 1),
        kernels::fir(4096, 16),
        kernels::quicksort(2048, seed),
        kernels::histogram(8192, 64, seed),
        kernels::stencil2d(64, 48, 3),
        kernels::string_search(8192, 8, seed),
        kernels::binary_search(4096, 2048, seed),
        kernels::pointer_chase(1024, 8192, seed),
        kernels::hash_mix(2048, seed),
        kernels::image_threshold(96, 64, seed),
    ]
}

/// A reduced-size suite (same ten kernels) for fast unit/integration
/// tests.
pub fn suite_small() -> Vec<Workload> {
    vec![
        kernels::matmul(10, 1),
        kernels::fir(256, 8),
        kernels::quicksort(192, 0xC47),
        kernels::histogram(512, 32, 0xC47),
        kernels::stencil2d(16, 12, 2),
        kernels::string_search(512, 6, 0xC47),
        kernels::binary_search(256, 128, 0xC47),
        kernels::pointer_chase(64, 512, 0xC47),
        kernels::hash_mix(256, 0xC47),
        kernels::image_threshold(24, 16, 0xC47),
    ]
}

// ---------------------------------------------------------------------
// Workload registry: one namespace over synthetic kernels and imported
// traces.
// ---------------------------------------------------------------------

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cnt_trace::{read_trace, ReadOptions, TraceError};

/// Errors from registry construction or workload loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// Filesystem access failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// An imported `.ctr` file failed to stream.
    Trace {
        /// The trace file.
        path: PathBuf,
        /// The underlying error.
        error: TraceError,
    },
    /// A selection pattern matched nothing.
    NoMatch {
        /// The pattern as given.
        pattern: String,
    },
    /// Two sources produced the same workload id.
    Duplicate {
        /// The colliding id.
        id: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, error } => {
                write!(f, "registry I/O error at {}: {error}", path.display())
            }
            RegistryError::Trace { path, error } => {
                write!(f, "imported trace {} failed: {error}", path.display())
            }
            RegistryError::NoMatch { pattern } => {
                write!(f, "no workload matches `{pattern}`")
            }
            RegistryError::Duplicate { id } => {
                write!(f, "duplicate workload id `{id}`")
            }
        }
    }
}

impl Error for RegistryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegistryError::Io { error, .. } => Some(error),
            RegistryError::Trace { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Where a registry entry's trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// An instrumented kernel, already materialized.
    Synthetic(Workload),
    /// A `.ctr` file imported from a real-application capture, loaded
    /// on demand.
    Imported(PathBuf),
}

/// One selectable workload: a stable id plus its source.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// Namespaced id: `synth/<kernel>` or `import/<file-stem>`.
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// Where the trace comes from.
    pub source: WorkloadSource,
}

impl WorkloadEntry {
    /// `"synthetic"` or `"imported"` — the source tag reports use.
    pub fn source_kind(&self) -> &'static str {
        match self.source {
            WorkloadSource::Synthetic(_) => "synthetic",
            WorkloadSource::Imported(_) => "imported",
        }
    }

    /// Materializes the workload: synthetic entries clone their trace,
    /// imported entries stream their `.ctr` file (strict CRC checking).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] / [`RegistryError::Trace`] for imported
    /// entries whose file is missing or damaged.
    pub fn load(&self) -> Result<Workload, RegistryError> {
        match &self.source {
            WorkloadSource::Synthetic(workload) => Ok(workload.clone()),
            WorkloadSource::Imported(path) => {
                let file = fs::File::open(path).map_err(|error| RegistryError::Io {
                    path: path.clone(),
                    error,
                })?;
                let trace = read_trace(io::BufReader::new(file), ReadOptions::default()).map_err(
                    |error| RegistryError::Trace {
                        path: path.clone(),
                        error,
                    },
                )?;
                Ok(Workload::new(&self.id, &self.description, trace))
            }
        }
    }
}

/// One namespace over every workload the harnesses can run: the
/// synthetic kernel suite under `synth/`, imported `.ctr` captures
/// under `import/`. `experiments`, `bench_throughput` and `cnt-serve`
/// all select from here by name or glob, so "run the adaptive encoder
/// over mcf and the stencil" is one `--workloads` flag regardless of
/// where each trace came from.
#[derive(Debug, Clone, Default)]
pub struct WorkloadRegistry {
    entries: Vec<WorkloadEntry>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkloadRegistry::default()
    }

    /// The built-in registry: every kernel of [`suite_extended`] under
    /// `synth/<name>`.
    pub fn builtin() -> Self {
        WorkloadRegistry::from_suite(suite_extended())
    }

    /// A registry over an explicit kernel list (e.g. [`suite_small`]
    /// in tests).
    pub fn from_suite(suite: Vec<Workload>) -> Self {
        let mut registry = WorkloadRegistry::new();
        for workload in suite {
            let entry = WorkloadEntry {
                id: format!("synth/{}", workload.name),
                description: workload.description.clone(),
                source: WorkloadSource::Synthetic(workload),
            };
            registry
                .add(entry)
                .expect("kernel suites have unique names");
        }
        registry
    }

    /// Adds one entry, keeping ids unique and the listing sorted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] if the id is already present.
    pub fn add(&mut self, entry: WorkloadEntry) -> Result<(), RegistryError> {
        match self.entries.binary_search_by(|e| e.id.cmp(&entry.id)) {
            Ok(_) => Err(RegistryError::Duplicate { id: entry.id }),
            Err(at) => {
                self.entries.insert(at, entry);
                Ok(())
            }
        }
    }

    /// Registers every `*.ctr` file in `dir` (sorted by file name) as
    /// `import/<stem>`, returning how many were added. Files are only
    /// opened later, by [`WorkloadEntry::load`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the directory is unreadable,
    /// [`RegistryError::Duplicate`] on an id collision.
    pub fn add_trace_dir(&mut self, dir: &Path) -> Result<usize, RegistryError> {
        let entries = fs::read_dir(dir).map_err(|error| RegistryError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "ctr"))
            .collect();
        paths.sort();
        let added = paths.len();
        for path in paths {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            self.add(WorkloadEntry {
                id: format!("import/{stem}"),
                description: format!("imported from {}", path.display()),
                source: WorkloadSource::Imported(path),
            })?;
        }
        Ok(added)
    }

    /// All entries, sorted by id.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Entries matching a glob pattern (`*` any run, `?` any one
    /// character; everything else literal). A pattern with no
    /// metacharacters is an exact-id match.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoMatch`] when nothing matches — selection
    /// typos must be loud, not an empty run.
    pub fn select(&self, pattern: &str) -> Result<Vec<&WorkloadEntry>, RegistryError> {
        let matched: Vec<&WorkloadEntry> = self
            .entries
            .iter()
            .filter(|e| glob_match(pattern, &e.id))
            .collect();
        if matched.is_empty() {
            return Err(RegistryError::NoMatch {
                pattern: pattern.to_string(),
            });
        }
        Ok(matched)
    }
}

/// Minimal glob: `*` matches any (possibly empty) run, `?` any single
/// character, everything else itself.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(pat: &[u8], text: &[u8]) -> bool {
        match pat.split_first() {
            None => text.is_empty(),
            Some((b'*', rest)) => (0..=text.len()).any(|skip| inner(rest, &text[skip..])),
            Some((b'?', rest)) => !text.is_empty() && inner(rest, &text[1..]),
            Some((&c, rest)) => text.first() == Some(&c) && inner(rest, &text[1..]),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_covers_all_kernels() {
        let s = suite_small();
        assert_eq!(s.len(), 10);
        let names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        for expected in [
            "matmul",
            "fir",
            "quicksort",
            "histogram",
            "stencil2d",
            "string_search",
            "binary_search",
            "pointer_chase",
            "hash_mix",
            "image_threshold",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn small_suite_has_diverse_mixes() {
        let s = suite_small();
        let fractions: Vec<f64> = s.iter().map(|w| w.trace.write_fraction()).collect();
        let min = fractions.iter().cloned().fold(f64::MAX, f64::min);
        let max = fractions.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.3, "suite mixes too uniform: {fractions:?}");
    }

    #[test]
    fn glob_matches_the_documented_forms() {
        assert!(glob_match("synth/*", "synth/matmul"));
        assert!(glob_match("*", "import/mcf"));
        assert!(glob_match("synth/matmul", "synth/matmul"));
        assert!(glob_match("synth/?ir", "synth/fir"));
        assert!(!glob_match("synth/*", "import/mcf"));
        assert!(!glob_match("synth/matmul", "synth/matmul2"));
        assert!(glob_match("*search*", "synth/binary_search"));
    }

    #[test]
    fn registry_lists_sorted_and_selects_by_glob() {
        let registry = WorkloadRegistry::from_suite(suite_small());
        assert_eq!(registry.entries().len(), 10);
        let ids: Vec<&str> = registry.entries().iter().map(|e| e.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "listing is sorted");
        assert!(ids.contains(&"synth/matmul"));

        let all = registry.select("synth/*").expect("matches");
        assert_eq!(all.len(), 10);
        let one = registry.select("synth/matmul").expect("matches");
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].source_kind(), "synthetic");
        let searches = registry.select("*search*").expect("matches");
        assert_eq!(searches.len(), 2);

        let err = registry.select("synth/mcf").expect_err("typo is loud");
        assert!(matches!(err, RegistryError::NoMatch { .. }), "{err}");
    }

    #[test]
    fn synthetic_entries_load_their_own_trace() {
        let registry = WorkloadRegistry::from_suite(suite_small());
        let entry = &registry.select("synth/fir").expect("matches")[0];
        let workload = entry.load().expect("loads");
        assert_eq!(workload.name, "fir");
        assert!(!workload.trace.is_empty());
    }

    #[test]
    fn trace_dir_entries_are_imported_and_load_lazily() {
        use cnt_sim::trace::MemoryAccess;
        use cnt_sim::Address;

        let dir = std::env::temp_dir().join("cnt_registry_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let trace: Trace = (0..50)
            .map(|i| MemoryAccess::read(Address::new(0x1000 + i * 8), 8))
            .collect();
        let mut bytes = Vec::new();
        cnt_trace::pack_trace(&trace, &mut bytes, 16).expect("packs");
        fs::write(dir.join("mcf_like.ctr"), &bytes).expect("writes");
        fs::write(dir.join("notes.txt"), b"ignored").expect("writes");

        let mut registry = WorkloadRegistry::from_suite(suite_small());
        let added = registry.add_trace_dir(&dir).expect("scans");
        assert_eq!(added, 1, "only .ctr files register");
        let entry = &registry.select("import/*").expect("matches")[0];
        assert_eq!(entry.id, "import/mcf_like");
        assert_eq!(entry.source_kind(), "imported");
        let workload = entry.load().expect("streams the file");
        assert_eq!(workload.trace.len(), 50);

        // A second scan of the same dir collides on the id.
        let err = registry.add_trace_dir(&dir).expect_err("duplicate");
        assert!(matches!(err, RegistryError::Duplicate { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}

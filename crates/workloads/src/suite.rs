//! The named benchmark suite used by the experiments.

use serde::{Deserialize, Serialize};

use cnt_sim::trace::Trace;

use crate::kernels;

/// One named, self-verified benchmark workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Short kernel name (e.g. `"matmul"`).
    pub name: String,
    /// Human-readable parameter description.
    pub description: String,
    /// The recorded data-carrying access trace.
    pub trace: Trace,
}

impl Workload {
    /// Bundles a verified trace with its identity.
    pub fn new(name: impl Into<String>, description: impl Into<String>, trace: Trace) -> Self {
        Workload {
            name: name.into(),
            description: description.into(),
            trace,
        }
    }
}

/// The full ten-kernel benchmark suite at the sizes the experiments use.
///
/// Footprints are chosen around the 32 KiB L1D of the paper's
/// configuration: some kernels fit comfortably (high hit rates), others
/// exceed it (binary search, pointer chase) to exercise fills, evictions
/// and write-backs.
///
/// # Example
///
/// ```no_run
/// let suite = cnt_workloads::suite();
/// assert_eq!(suite.len(), 10);
/// ```
pub fn suite() -> Vec<Workload> {
    vec![
        kernels::matmul(40, 1),
        kernels::fir(4096, 16),
        kernels::quicksort(2048, 0xC47),
        kernels::histogram(8192, 64, 0xC47),
        kernels::stencil2d(64, 48, 3),
        kernels::string_search(8192, 8, 0xC47),
        kernels::binary_search(4096, 2048, 0xC47),
        kernels::pointer_chase(1024, 8192, 0xC47),
        kernels::hash_mix(2048, 0xC47),
        kernels::image_threshold(96, 64, 0xC47),
    ]
}

/// The extended fourteen-kernel suite: the base [`suite`] plus SpMV
/// (whose interleaved index/value layout produces heterogeneous lines),
/// the STREAM triad, BFS, and the 8x8 DCT. Used by the partitioning and
/// write-policy studies.
pub fn suite_extended() -> Vec<Workload> {
    let mut s = suite();
    s.push(kernels::spmv(512, 12, 0xC47));
    s.push(kernels::stream_triad(4096, 4, 0xC47));
    s.push(kernels::bfs(2048, 4, 0xC47));
    s.push(kernels::dct8x8(8, 6, 0xC47));
    s
}

/// The base suite with every seeded kernel re-seeded (matmul, FIR and the
/// stencil generate structured data and are seed-independent). Used by
/// the seed-robustness study.
pub fn suite_seeded(seed: u64) -> Vec<Workload> {
    vec![
        kernels::matmul(40, 1),
        kernels::fir(4096, 16),
        kernels::quicksort(2048, seed),
        kernels::histogram(8192, 64, seed),
        kernels::stencil2d(64, 48, 3),
        kernels::string_search(8192, 8, seed),
        kernels::binary_search(4096, 2048, seed),
        kernels::pointer_chase(1024, 8192, seed),
        kernels::hash_mix(2048, seed),
        kernels::image_threshold(96, 64, seed),
    ]
}

/// A reduced-size suite (same ten kernels) for fast unit/integration
/// tests.
pub fn suite_small() -> Vec<Workload> {
    vec![
        kernels::matmul(10, 1),
        kernels::fir(256, 8),
        kernels::quicksort(192, 0xC47),
        kernels::histogram(512, 32, 0xC47),
        kernels::stencil2d(16, 12, 2),
        kernels::string_search(512, 6, 0xC47),
        kernels::binary_search(256, 128, 0xC47),
        kernels::pointer_chase(64, 512, 0xC47),
        kernels::hash_mix(256, 0xC47),
        kernels::image_threshold(24, 16, 0xC47),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_covers_all_kernels() {
        let s = suite_small();
        assert_eq!(s.len(), 10);
        let names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        for expected in [
            "matmul",
            "fir",
            "quicksort",
            "histogram",
            "stencil2d",
            "string_search",
            "binary_search",
            "pointer_chase",
            "hash_mix",
            "image_threshold",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn small_suite_has_diverse_mixes() {
        let s = suite_small();
        let fractions: Vec<f64> = s.iter().map(|w| w.trace.write_fraction()).collect();
        let min = fractions.iter().cloned().fold(f64::MAX, f64::min);
        let max = fractions.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.3, "suite mixes too uniform: {fractions:?}");
    }
}

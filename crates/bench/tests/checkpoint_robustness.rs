//! Robustness of the `.ctrs` checkpoint format and the kill-and-resume
//! contract.
//!
//! The property under test: **no damaged checkpoint is ever partially
//! restored**. Any single-bit flip, truncation, version bump, or config
//! mismatch must surface as the right typed [`CheckpointError`] before
//! any state is touched — or, for flips confined to the format's few
//! unvalidated pad bytes, decode to state identical to the original.
//! The `#[ignore]`d test at the bottom drives the real binary through a
//! SIGKILL at a random point and asserts the resumed run's stdout and
//! metrics stream are byte-identical to an uninterrupted run's.

use std::path::PathBuf;

use cnt_bench::ckpt::{self, DriverState};
use cnt_bench::runner::dcache_config;
use cnt_bench::stream::ReplayCursor;
use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_trace::{CheckpointError, CheckpointFile};
use proptest::prelude::*;

fn configs() -> (CntCacheConfig, CntCacheConfig) {
    (
        dcache_config("L1D", EncodingPolicy::None),
        dcache_config("L1D", EncodingPolicy::adaptive_default()),
    )
}

/// A realistic checkpoint: a cache warmed by a few hundred accesses,
/// mid-pass driver state, the full section set.
fn sample_checkpoint() -> (CheckpointFile, u64) {
    let (base, cnt) = configs();
    let mut cache = CntCache::new(cnt.clone()).expect("valid config");
    for i in 0..400u64 {
        let addr = cnt_sim::Address::new((i % 96) * 8);
        if i % 3 == 0 {
            cache
                .write(addr, 8, i.wrapping_mul(0x0101_0101))
                .expect("write");
        } else {
            cache.read(addr, 8).expect("read");
        }
    }
    let driver = DriverState {
        pass: 1,
        baseline: None,
        cursor: ReplayCursor {
            chunk: 3,
            accesses: 400,
            ..ReplayCursor::default()
        },
        replay_ids_allocated: 2,
        metrics_every: None,
    };
    let expected = ckpt::pair_fingerprint(base.fingerprint(), cnt.fingerprint());
    let file = ckpt::build(&cache, (&base, &cnt), 0xFEED, &driver).expect("builds");
    (file, expected)
}

fn write_temp(name: &str, bytes: &[u8]) -> PathBuf {
    let dir = std::env::temp_dir().join("cnt_ckpt_robustness");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("writes");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping ANY single bit either fails with a typed error or leaves
    /// the loaded state exactly equal to the original (pad bytes only) —
    /// never a silently different restore.
    #[test]
    fn single_bit_flip_never_silently_alters_state(
        case in (any::<u64>(), 0u8..8)
    ) {
        let (file, expected) = sample_checkpoint();
        let pristine = file.to_bytes();
        let (index, bit) = case;
        let pos = (index % pristine.len() as u64) as usize;
        let mut bytes = pristine.clone();
        bytes[pos] ^= 1 << bit;

        let path = write_temp(&format!("flip_{pos}_{bit}.ctrs"), &bytes);
        match ckpt::load(&path, expected) {
            Err(_) => {} // rejected before any restore — the common case
            Ok((loaded, driver, obs)) => {
                prop_assert_eq!(&loaded, &file, "flip at byte {} bit {} changed the parse", pos, bit);
                let original: DriverState = serde_json::from_str(
                    std::str::from_utf8(file.require("driver").unwrap()).unwrap(),
                ).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&driver).unwrap(),
                    serde_json::to_string(&original).unwrap()
                );
                let _ = obs;
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Every strict prefix of a valid file is `Truncated` — a torn write
    /// that escaped the atomic-rename protocol can never half-load.
    #[test]
    fn any_truncation_is_fatal(cut in any::<u64>()) {
        let (file, expected) = sample_checkpoint();
        let pristine = file.to_bytes();
        // 0..=len-1: always a strict prefix of the valid byte stream.
        let len = (cut % pristine.len() as u64) as usize;
        let path = write_temp(&format!("trunc_{len}.ctrs"), &pristine[..len]);
        let err = ckpt::load(&path, expected).expect_err("strict prefix must fail");
        prop_assert!(
            matches!(err, CheckpointError::Truncated { .. }),
            "expected Truncated, got {err}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn targeted_corruptions_hit_the_right_variant() {
    let (file, expected) = sample_checkpoint();
    let pristine = file.to_bytes();
    let check = |name: &str, bytes: Vec<u8>| {
        let path = write_temp(name, &bytes);
        let err = ckpt::load(&path, expected).expect_err("corruption must fail");
        std::fs::remove_file(&path).ok();
        err
    };

    // Damaged magic.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        check("magic.ctrs", bytes),
        CheckpointError::BadMagic { .. }
    ));

    // Version bump: a future format must be refused, not guessed at.
    let mut bytes = pristine.clone();
    bytes[8] = bytes[8].wrapping_add(1);
    assert!(matches!(
        check("version.ctrs", bytes),
        CheckpointError::UnsupportedVersion { .. }
    ));

    // Manifest body damage (the config fingerprint lives here): caught
    // by the manifest CRC before the fingerprint is even compared.
    let mut bytes = pristine.clone();
    bytes[16] ^= 0x01;
    assert!(matches!(
        check("manifest.ctrs", bytes),
        CheckpointError::ManifestCrc { .. }
    ));

    // Section payload damage names the damaged section.
    let cache_payload = file.require("cache").expect("cache section");
    let at = pristine
        .windows(cache_payload.len().min(64))
        .position(|w| w == &cache_payload[..cache_payload.len().min(64)])
        .expect("cache payload embedded in file");
    let mut bytes = pristine.clone();
    bytes[at + 10] ^= 0x40;
    match check("payload.ctrs", bytes) {
        CheckpointError::SectionCrc { section, .. } => assert_eq!(section, "cache"),
        other => panic!("expected SectionCrc, got {other}"),
    }

    // A checkpoint from a different experiment configuration.
    let path = write_temp("config.ctrs", &pristine);
    let err = ckpt::load(&path, expected ^ 1).expect_err("wrong config must fail");
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, CheckpointError::ConfigMismatch { .. }));
}

// ------------------------------------------------------------------ oracle

/// Runs the release `tracegen` binary with the given args, returning
/// (exit success, stdout).
fn tracegen(dir: &std::path::Path, args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tracegen"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("tracegen spawns");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Kill-and-resume differential oracle against the real binary: SIGKILL
/// the checkpointing run at a pseudo-random point mid-replay, resume
/// from the surviving `.ctrs`, and require stdout and the metrics
/// stream to be byte-identical to an uninterrupted run — across jobs
/// settings. Ignored by default: it replays a multi-million-access
/// trace several times. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "multi-second end-to-end kill/resume oracle; run with --ignored"]
fn sigkill_resume_oracle() {
    let dir = std::env::temp_dir().join("cnt_sigkill_oracle");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    let (ok, _) = tracegen(
        &dir,
        &[
            "pack-synth",
            "oracle.ctr",
            "--accesses",
            "4000000",
            "--density",
            "0.2",
            "--chunk",
            "512",
            "--seed",
            "17",
        ],
    );
    assert!(ok, "pack-synth failed");

    let replay = |extra: &[&str], metrics: &str| {
        let mut args = vec![
            "stream-replay",
            "oracle.ctr",
            "--budget-mib",
            "1",
            "--metrics-out",
            metrics,
            "--metrics-every",
            "100000",
        ];
        args.extend_from_slice(extra);
        tracegen(&dir, &args)
    };

    let (ok, full_stdout) = replay(&["--seq"], "full.jsonl");
    assert!(ok, "uninterrupted run failed");
    let full_metrics = std::fs::read(dir.join("full.jsonl")).expect("metrics written");

    // Kill at a spread of points; at least some must land mid-replay
    // after the first checkpoint.
    let mut resumed_after_kill = 0u32;
    for (round, delay_ms) in [120u64, 300, 600, 1000, 1500].iter().enumerate() {
        std::fs::remove_file(dir.join("oracle.ctrs")).ok();
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tracegen"))
            .current_dir(&dir)
            .args([
                "stream-replay",
                "oracle.ctr",
                "--budget-mib",
                "1",
                "--seq",
                "--metrics-out",
                "killed.jsonl",
                "--metrics-every",
                "100000",
                "--checkpoint-every",
                "200",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawns");
        std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
        let finished = child.try_wait().expect("try_wait").is_some();
        child.kill().ok();
        child.wait().expect("reaped");
        if finished || !dir.join("oracle.ctrs").exists() {
            // Too late (run completed) or too early (no checkpoint yet):
            // nothing to resume this round.
            continue;
        }
        resumed_after_kill += 1;
        let jobs: &[&str] = if round % 2 == 0 {
            &["--seq"]
        } else {
            &["--jobs", "4"]
        };
        let mut args = vec!["--resume", "oracle.ctrs"];
        args.extend_from_slice(jobs);
        let (ok, stdout) = replay(&args, "resumed.jsonl");
        assert!(ok, "resume failed (round {round})");
        assert_eq!(stdout, full_stdout, "stdout diverged (round {round})");
        let metrics = std::fs::read(dir.join("resumed.jsonl")).expect("metrics written");
        assert_eq!(metrics, full_metrics, "metrics diverged (round {round})");
    }
    assert!(
        resumed_after_kill >= 1,
        "no kill landed mid-replay; widen the delay spread"
    );
}

//! End-to-end equivalence of streamed and in-memory replay.
//!
//! The contract under test: for any workload, JSON → `.ctr` → streamed
//! chunk-parallel replay produces an [`EnergyReport`] **byte-identical**
//! (after JSON serialization) to replaying the same accesses from
//! memory — and damaged inputs fail loudly instead of skewing energy
//! numbers silently.

use cnt_bench::runner::{dcache_config, run_dcache};
use cnt_bench::stream::{replay_stream, StreamError};
use cnt_cache::{CntCache, EncodingPolicy, EnergyReport};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;
use cnt_trace::{pack_trace, CorruptionPolicy, ReadOptions, StreamReader};
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use proptest::prelude::*;

fn pack(trace: &Trace, chunk: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    pack_trace(trace, &mut bytes, chunk).expect("packs");
    bytes
}

/// Streams packed bytes through a fresh D-Cache.
fn stream_replay(
    bytes: &[u8],
    policy: EncodingPolicy,
    opts: ReadOptions,
) -> Result<(EnergyReport, cnt_obs::IngestSnapshot), StreamError> {
    let mut reader = StreamReader::new(bytes, opts)?;
    let mut cache = CntCache::new(dcache_config("L1D", policy)).expect("valid config");
    let (ingest, _) = replay_stream(&mut cache, &mut reader)?;
    cache.flush();
    Ok((cache.into_report(), ingest))
}

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    // Cache-valid accesses: naturally aligned, small footprint so lines
    // are reused and the adaptive policy actually switches directions.
    let width = prop::sample::select(vec![1u8, 2, 4, 8]);
    (0u64..16384, width, any::<u64>(), 0u8..3).prop_map(|(raw, width, value, kind)| {
        let addr = Address::new(raw & !(u64::from(width) - 1));
        match kind {
            0 => MemoryAccess::read(addr, width),
            1 => MemoryAccess::write(addr, width, value),
            // Instruction fetches are always 8 bytes wide.
            _ => MemoryAccess::ifetch(Address::new(raw & !7)),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// JSON → `.ctr` → streamed replay == in-memory replay, to the byte.
    #[test]
    fn streamed_replay_equals_in_memory_replay(
        accesses in prop::collection::vec(arb_access(), 0..500),
        chunk in 1u32..64,
        budget_kib in 1usize..16,
    ) {
        let trace = Trace::from_iter(accesses);

        // JSON leg: the trace survives the text interchange format.
        let json = serde_json::to_string(&trace).expect("serializes");
        let from_json: Trace = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&from_json, &trace);

        let bytes = pack(&from_json, chunk);
        let opts = ReadOptions {
            budget_bytes: budget_kib * 1024,
            corruption: CorruptionPolicy::FailFast,
        };
        for policy in [EncodingPolicy::None, EncodingPolicy::adaptive_default()] {
            let expected = run_dcache(policy, &trace);
            let (streamed, ingest) = stream_replay(&bytes, policy, opts)
                .expect("intact stream replays");
            prop_assert_eq!(&streamed, &expected);
            // Byte-identical after serialization, not merely PartialEq.
            prop_assert_eq!(
                serde_json::to_string(&streamed).expect("serializes"),
                serde_json::to_string(&expected).expect("serializes")
            );
            prop_assert!(
                ingest.peak_buffered_bytes <= (budget_kib * 1024) as u64,
                "peak {} exceeded budget {}",
                ingest.peak_buffered_bytes,
                budget_kib * 1024
            );
        }
    }

    /// A truncated `.ctr` file must error out of the replay — under both
    /// corruption policies — never produce a report.
    #[test]
    fn truncated_file_fails_the_replay(
        accesses in prop::collection::vec(arb_access(), 10..300),
        chunk in 1u32..32,
        cut_back in 1usize..11,
    ) {
        let trace = Trace::from_iter(accesses);
        let bytes = pack(&trace, chunk);
        prop_assume!(cut_back < bytes.len());
        let cut = &bytes[..bytes.len() - cut_back];
        for corruption in [CorruptionPolicy::FailFast, CorruptionPolicy::SkipWithReport] {
            let result = stream_replay(cut, EncodingPolicy::adaptive_default(), ReadOptions {
                corruption,
                ..ReadOptions::default()
            });
            prop_assert!(
                matches!(result, Err(StreamError::Trace(_))),
                "{corruption:?} must surface truncation"
            );
        }
    }

    /// A flipped CRC byte fails fast, and under the skip policy the
    /// replay completes over the intact remainder only.
    #[test]
    fn flipped_crc_fails_fast_and_skips_cleanly(
        accesses in prop::collection::vec(arb_access(), 50..300),
        flip_frac in 0.1f64..0.9,
    ) {
        let trace = Trace::from_iter(accesses);
        let chunk = 16u32;
        let mut bytes = pack(&trace, chunk);
        let flip_at = cnt_trace::HEADER_BYTES
            + ((bytes.len() - cnt_trace::HEADER_BYTES - 1) as f64 * flip_frac) as usize;
        bytes[flip_at] ^= 0x04;

        let fail = stream_replay(&bytes, EncodingPolicy::adaptive_default(), ReadOptions {
            corruption: CorruptionPolicy::FailFast,
            ..ReadOptions::default()
        });
        prop_assert!(fail.is_err(), "fail-fast must reject the damaged stream");

        if let Ok((_, ingest)) = stream_replay(
            &bytes,
            EncodingPolicy::adaptive_default(),
            ReadOptions {
                corruption: CorruptionPolicy::SkipWithReport,
                ..ReadOptions::default()
            },
        ) {
            // Some chunk was dropped and accounted for (a flip inside a
            // frame header can desync framing, which lands in the Err
            // arm instead — also acceptable).
            prop_assert!(ingest.chunks_skipped >= 1);
            prop_assert!(ingest.chunks_consumed < ingest.chunks_read + ingest.chunks_skipped);
        }
    }
}

/// The ISSUE acceptance bar: a ≥ 64 MiB trace streamed under an 8 MiB
/// reader budget must reproduce the in-memory report exactly, with
/// buffering bounded by the budget. Run with `--ignored --release`
/// (debug-mode replay of ~5M accesses is too slow for tier-1).
#[test]
#[ignore = "multi-GB-scale acceptance check; run in release"]
fn large_trace_streams_identically_under_8mib_budget() {
    let spec = SyntheticSpec {
        accesses: 4_800_000,
        footprint_lines: 4096,
        read_fraction: 0.5,
        ones_density: 0.3,
        pattern: AddressPattern::UniformRandom,
        seed: 0x64C7,
    };
    let mut bytes = Vec::new();
    let summary =
        cnt_trace::pack_accesses(spec.stream(), &mut bytes, 8192).expect("packs streamed");
    assert!(
        summary.payload_bytes >= 64 * 1024 * 1024,
        "trace must be at least 64 MiB, got {} bytes",
        summary.payload_bytes
    );

    let budget = 8 * 1024 * 1024;
    let opts = ReadOptions {
        budget_bytes: budget,
        corruption: CorruptionPolicy::FailFast,
    };
    let (streamed, ingest) =
        stream_replay(&bytes, EncodingPolicy::adaptive_default(), opts).expect("streams");
    assert!(ingest.peak_buffered_bytes <= budget as u64);
    assert!(
        ingest.peak_buffered_bytes > budget as u64 / 2,
        "windows should actually fill toward the budget"
    );
    assert_eq!(ingest.chunks_consumed, summary.chunks);

    let trace = spec.generate();
    let expected = run_dcache(EncodingPolicy::adaptive_default(), &trace);
    assert_eq!(streamed, expected);
    assert_eq!(
        serde_json::to_string(&streamed).expect("serializes"),
        serde_json::to_string(&expected).expect("serializes")
    );
}

//! The metrics stream must be deterministic across `--jobs` settings:
//! the same replays produce the same snapshot stream whether they ran
//! sequentially or interleaved on the worker pool, because replay ids
//! come from program structure and the sink sorts by (id, epoch) before
//! rendering.
//!
//! The global sink and the global pool budget are process-wide, so the
//! whole comparison lives in ONE `#[test]` — libtest must not interleave
//! two sink lifecycles.

use cnt_bench::pool;
use cnt_bench::runner::run_dcache_matrix;
use cnt_cache::EncodingPolicy;
use cnt_workloads::Workload;

fn small_matrix() -> Vec<Workload> {
    // A few cheap kernels: enough fan-out for the pool to actually
    // interleave, cheap enough to replay four times in a debug test.
    cnt_workloads::suite_small()
}

/// Runs the (workload x policy) matrix under a sink and returns the
/// rendered JSONL.
fn matrix_jsonl(jobs: usize, every: u64) -> String {
    pool::set_jobs(jobs);
    cnt_obs::install(every);
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    let _scope = cnt_obs::scoped("matrix");
    let matrix = run_dcache_matrix(&small_matrix(), &policies);
    assert!(!matrix.is_empty());
    let snapshots = cnt_obs::drain();
    assert!(
        !snapshots.is_empty(),
        "tracing was enabled, expected snapshots"
    );
    cnt_obs::to_jsonl(&snapshots).expect("snapshots serialize")
}

#[test]
fn metrics_stream_is_byte_identical_across_jobs() {
    const EVERY: u64 = 2_000;

    let sequential = matrix_jsonl(1, EVERY);
    let parallel = matrix_jsonl(pool::default_jobs().max(2), EVERY);
    assert_eq!(
        sequential, parallel,
        "snapshot stream must not depend on the worker count"
    );

    // The stream is well-formed, covers every matrix cell, and each
    // cell's replay id carries the fan-out structure.
    let summary = cnt_obs::validate_jsonl(&sequential).expect("valid stream");
    let cells = small_matrix().len() * 2;
    assert_eq!(
        summary.experiments, cells,
        "one stream per (workload, policy)"
    );
    assert!(
        summary.snapshots >= cells,
        "at least one snapshot per replay"
    );
    let first_line = sequential.lines().next().expect("non-empty");
    let first: cnt_obs::Snapshot = serde_json::from_str(first_line).expect("parses");
    assert!(
        first.experiment.starts_with("matrix/f0000/i") && first.experiment.ends_with("/r0000"),
        "replay id should be scope-structured, got `{}`",
        first.experiment
    );

    // With the sink drained, tracing is off again and nothing leaks into
    // a later install.
    assert!(!cnt_obs::is_enabled());
}

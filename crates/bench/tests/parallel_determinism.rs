//! The parallel harness must be invisible in the output: running every
//! experiment through `run_many` on a multi-worker pool has to produce
//! byte-identical reports to running them one at a time sequentially.
//!
//! This replays each id once sequentially and once in parallel and
//! compares the rendered strings. It covers the real `ALL` list (plus
//! the hidden `calibrate` id), so it is the slowest test in the tree —
//! run it in release when iterating (`cargo test --release -p cnt-bench
//! --test parallel_determinism`).

use cnt_bench::{experiments, pool};

#[test]
fn run_many_matches_sequential_for_every_id() {
    let mut ids: Vec<&str> = experiments::ALL.to_vec();
    ids.push("calibrate");

    // Sequential reference: pool capped at one worker, plain run() loop.
    pool::set_jobs(1);
    let reference: Vec<Result<String, String>> =
        ids.iter().map(|id| experiments::run(id)).collect();

    // Parallel pass: as many workers as the harness would use (at least
    // two so the parallel path is actually exercised on 1-core runners).
    pool::set_jobs(pool::default_jobs().max(2));
    let parallel = experiments::run_many(&ids);

    assert_eq!(parallel.len(), reference.len());
    for ((id, seq), par) in ids.iter().zip(&reference).zip(&parallel) {
        assert_eq!(
            seq, par,
            "experiment `{id}`: parallel output diverged from sequential"
        );
    }
}

#[test]
fn run_many_reports_unknown_ids_in_place() {
    pool::set_jobs(2);
    let results = experiments::run_many(&["table1", "nope", "fig2"]);
    assert!(results[0].is_ok());
    assert!(results[1].as_ref().is_err_and(|e| e.contains("nope")));
    assert!(results[2].is_ok());
}

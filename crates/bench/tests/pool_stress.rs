//! Stress tests for the global pool budget and both scheduling engines.
//!
//! These tests assert on [`pool::available_budget`], a process-global
//! counter, so they must not overlap with each other (or any other
//! `par_map` in this binary): every test serialises on [`lock`]. The
//! library's unit tests run in a separate binary, so they cannot
//! interfere.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use cnt_bench::pool::{self, SchedulerKind};
use cnt_bench::stream::replay_stream;
use cnt_cache::{CntCache, EncodingPolicy};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;
use cnt_trace::{pack_trace, CorruptionPolicy, ReadOptions, StreamReader};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialises the tests in this file and restores the default pool
/// configuration afterwards (via [`Restore`]).
fn lock() -> (MutexGuard<'static, ()>, Restore) {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    (guard, Restore)
}

struct Restore;

impl Drop for Restore {
    fn drop(&mut self) {
        pool::set_scheduler(SchedulerKind::WorkStealing);
        pool::set_jobs(pool::default_jobs());
    }
}

fn engines() -> [SchedulerKind; 2] {
    [SchedulerKind::WorkStealing, SchedulerKind::Static]
}

#[test]
fn budget_is_restored_after_worker_panic() {
    let (_guard, _restore) = lock();
    for kind in engines() {
        pool::set_scheduler(kind);
        pool::set_jobs(4);
        assert_eq!(pool::available_budget(), 3, "fresh budget ({kind:?})");
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool::par_map(&items, |&i| {
                if i == 17 {
                    panic!("injected failure");
                }
                i * 2
            })
        }));
        let panic = result.expect_err("the injected panic must propagate");
        let message = panic
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("injected failure"), "{kind:?}: {message}");
        assert_eq!(
            pool::available_budget(),
            3,
            "no leaked reservations after a panic ({kind:?})"
        );
    }
}

#[test]
fn nested_fanout_under_exhausted_budget_completes() {
    let (_guard, _restore) = lock();
    for kind in engines() {
        pool::set_scheduler(kind);
        // Budget of exactly one extra thread: the outer fan-out takes
        // it, so inner fan-outs start with nothing and must make
        // progress on their calling thread alone.
        pool::set_jobs(2);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outer: Vec<usize> = (0..4).collect();
        let sums = pool::par_map(&outer, |&o| {
            let inner: Vec<usize> = (0..32).collect();
            let inner_sum: usize = pool::par_map(&inner, |&i| {
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                concurrent.fetch_sub(1, Ordering::SeqCst);
                o * 1000 + i
            })
            .iter()
            .sum();
            inner_sum
        });
        let expect: Vec<usize> = (0..4)
            .map(|o| (0..32).map(|i| o * 1000 + i).sum())
            .collect();
        assert_eq!(sums, expect, "nested results intact ({kind:?})");
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "at most --jobs threads ever ran ({kind:?})"
        );
        assert_eq!(
            pool::available_budget(),
            1,
            "budget restored after nesting ({kind:?})"
        );
    }
}

#[test]
fn deep_uneven_nesting_terminates_with_correct_results() {
    let (_guard, _restore) = lock();
    pool::set_scheduler(SchedulerKind::WorkStealing);
    pool::set_jobs(8);
    // Skew: element 0 fans out again (the straggler shape the scheduler
    // exists for); recruitment and incremental release must neither
    // deadlock nor drop results.
    let outer: Vec<usize> = (0..16).collect();
    let totals = pool::par_map(&outer, |&o| {
        if o == 0 {
            let inner: Vec<usize> = (0..64).collect();
            pool::par_map(&inner, |&i| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                i
            })
            .iter()
            .sum::<usize>()
        } else {
            o
        }
    });
    let mut expect: Vec<usize> = (1..16).collect();
    expect.insert(0, (0..64).sum());
    assert_eq!(totals, expect);
    assert_eq!(pool::available_budget(), 7, "budget restored");
}

fn sample_trace(n: u64) -> Trace {
    (0..n)
        .map(|i| {
            let addr = Address::new(0x8000 + (i % 512) * 8);
            if i % 7 == 0 {
                MemoryAccess::write(addr, 8, i.wrapping_mul(0x0F0F_F0F0_1234_5678))
            } else {
                MemoryAccess::read(addr, 8)
            }
        })
        .collect()
}

/// The satellite acceptance sweep: the streamed-replay path must be
/// byte-identical across `--jobs {1, 2, 4, 8}` — same energy report,
/// same ingest counters, same access totals — under both engines.
#[test]
fn jobs_sweep_is_identical_on_streamed_replay() {
    let (_guard, _restore) = lock();
    let trace = sample_trace(4_000);
    let mut bytes = Vec::new();
    pack_trace(&trace, &mut bytes, 64).expect("packs");

    let replay = |kind: SchedulerKind, jobs: usize| {
        pool::set_scheduler(kind);
        pool::set_jobs(jobs);
        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 2 * 1024, // forces many prefetch windows
                corruption: CorruptionPolicy::FailFast,
            },
        )
        .expect("opens");
        let mut cache = CntCache::new(cnt_bench::runner::dcache_config(
            "L1D",
            EncodingPolicy::adaptive_default(),
        ))
        .expect("valid");
        let outcome = replay_stream(&mut cache, &mut reader).expect("streams");
        cache.flush();
        (outcome, cache.into_report())
    };

    let baseline = replay(SchedulerKind::WorkStealing, 1);
    for kind in engines() {
        for jobs in [1usize, 2, 4, 8] {
            let run = replay(kind, jobs);
            assert_eq!(
                run, baseline,
                "streamed replay diverged at --jobs {jobs} under {kind:?}"
            );
        }
    }
}

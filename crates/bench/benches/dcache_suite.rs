//! Macro benchmark: full suite kernels through the simulated D-Cache,
//! baseline vs CNT-Cache (the timing counterpart of `fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnt_bench::runner::run_dcache;
use cnt_cache::EncodingPolicy;
use cnt_workloads::suite_small;

fn dcache_suite(c: &mut Criterion) {
    let workloads = suite_small();
    let mut group = c.benchmark_group("dcache_suite");
    for w in &workloads {
        group.throughput(Throughput::Elements(w.trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("baseline", &w.name),
            &w.trace,
            |b, trace| b.iter(|| run_dcache(EncodingPolicy::None, trace)),
        );
        group.bench_with_input(
            BenchmarkId::new("cnt_cache", &w.name),
            &w.trace,
            |b, trace| b.iter(|| run_dcache(EncodingPolicy::adaptive_default(), trace)),
        );
    }
    group.finish();
}

criterion_group!(benches, dcache_suite);
criterion_main!(benches);

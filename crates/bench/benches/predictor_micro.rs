//! Micro benchmarks of the direction predictor (Algorithm 1) and the
//! integrated CNT-Cache demand path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_encoding::{
    AccessHistory, DirectionBits, DirectionPredictor, PredictorConfig, WindowSummary,
};
use cnt_energy::BitEnergies;
use cnt_sim::Address;

fn predictor_benches(c: &mut Criterion) {
    let bits = BitEnergies::cnfet_default();
    let mut group = c.benchmark_group("predictor");
    group.throughput(Throughput::Elements(1));

    for partitions in [1u32, 8] {
        let predictor = DirectionPredictor::new(
            &bits,
            PredictorConfig {
                window: 15,
                line_bits: 512,
                partitions,
                delta_t: 0.1,
            },
        )
        .expect("valid");
        let line: Vec<u64> = (0..8).map(|i| i * 0x1111).collect();
        let dirs = DirectionBits::all_normal(partitions);
        group.bench_with_input(
            BenchmarkId::new("decide", partitions),
            &predictor,
            |b, p| b.iter(|| p.decide(WindowSummary { wr_num: 4 }, &line, &dirs)),
        );
    }

    let predictor = DirectionPredictor::new(
        &bits,
        PredictorConfig {
            window: 15,
            line_bits: 512,
            partitions: 8,
            delta_t: 0.1,
        },
    )
    .expect("valid");
    group.bench_function("observe", |b| {
        let mut history = AccessHistory::new();
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            predictor.observe(&mut history, i.is_multiple_of(3))
        })
    });
    group.finish();
}

fn integrated_demand_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnt_cache_demand");
    group.throughput(Throughput::Elements(1));
    for (label, policy) in [
        ("baseline", EncodingPolicy::None),
        ("adaptive", EncodingPolicy::adaptive_default()),
    ] {
        group.bench_function(label, |b| {
            let config = CntCacheConfig::builder()
                .policy(policy)
                .build()
                .expect("valid");
            let mut cache = CntCache::new(config).expect("valid");
            // Warm a small resident set, then hammer hits.
            for i in 0..64u64 {
                cache.write(Address::new(i * 64), 8, i).expect("warm");
            }
            let mut i = 0u64;
            b.iter(|| {
                let addr = Address::new((i % 64) * 64);
                i += 1;
                cache.read(addr, 8).expect("hit")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, predictor_benches, integrated_demand_path);
criterion_main!(benches);

//! Micro benchmarks of the encoding primitives: codec, popcount ranges,
//! and threshold-table construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnt_encoding::popcount::{popcount_range, popcount_words};
use cnt_encoding::{BitPreference, DirectionBits, LineCodec, PartitionLayout, ThresholdTable};
use cnt_energy::BitEnergies;

fn line() -> [u64; 8] {
    [
        0x0123_4567_89AB_CDEF,
        0,
        u64::MAX,
        0xF0F0_F0F0_F0F0_F0F0,
        0x0000_FFFF_0000_FFFF,
        1,
        0x8000_0000_0000_0000,
        0xDEAD_BEEF_CAFE_BABE,
    ]
}

fn codec_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let data = line();
    for partitions in [1u32, 8, 64] {
        let codec = LineCodec::new(PartitionLayout::new(512, partitions).expect("valid"));
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(
            BenchmarkId::new("choose_directions", partitions),
            &codec,
            |b, codec| b.iter(|| codec.choose_directions(&data, BitPreference::MoreOnes)),
        );
        let dirs = codec.choose_directions(&data, BitPreference::MoreOnes);
        group.bench_with_input(BenchmarkId::new("apply", partitions), &codec, |b, codec| {
            b.iter(|| codec.apply(&data, &dirs))
        });
        group.bench_with_input(
            BenchmarkId::new("stored_popcount", partitions),
            &codec,
            |b, codec| b.iter(|| codec.stored_popcount(&data, &dirs)),
        );
        group.bench_with_input(
            BenchmarkId::new("stored_word", partitions),
            &codec,
            |b, codec| b.iter(|| codec.stored_word(data[3], &dirs, 3)),
        );
    }
    group.finish();
}

fn popcount_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcount");
    let data = line();
    group.bench_function("whole_line", |b| b.iter(|| popcount_words(&data)));
    group.bench_function("straddling_range", |b| {
        b.iter(|| popcount_range(&data, 60, 200))
    });
    group.finish();
}

fn threshold_benches(c: &mut Criterion) {
    let bits = BitEnergies::cnfet_default();
    let mut group = c.benchmark_group("threshold");
    for window in [15u32, 127] {
        group.bench_with_input(BenchmarkId::new("table_build", window), &window, |b, &w| {
            b.iter(|| ThresholdTable::new(&bits, w, 64, 0.1).expect("valid"))
        });
    }
    let table = ThresholdTable::new(&bits, 15, 64, 0.1).expect("valid");
    group.bench_function("should_flip", |b| b.iter(|| table.should_flip(7, 31)));
    group.finish();
}

fn direction_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("direction_bits");
    group.bench_function("apply_flips", |b| {
        let mut dirs = DirectionBits::all_normal(64);
        b.iter(|| dirs.apply_flips(0xAAAA_AAAA_AAAA_AAAA))
    });
    group.finish();
}

criterion_group!(
    benches,
    codec_benches,
    popcount_benches,
    threshold_benches,
    direction_benches
);
criterion_main!(benches);

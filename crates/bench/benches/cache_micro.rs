//! Micro benchmarks of the cache-simulator substrate: hit paths, miss and
//! eviction paths, and replacement policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnt_sim::{Address, Cache, CacheGeometry, MainMemory, ReplacementKind};

fn hit_paths(c: &mut Criterion) {
    let geometry = CacheGeometry::new(32 * 1024, 64, 8).expect("valid");
    let mut group = c.benchmark_group("cache_hit");
    group.throughput(Throughput::Elements(1));

    group.bench_function("read_hit", |b| {
        let mut cache = Cache::new("t", geometry, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("warm");
        b.iter(|| {
            cache
                .read(Address::new(0x40), 8, &mut mem, &mut ())
                .expect("hit")
        })
    });

    group.bench_function("write_hit", |b| {
        let mut cache = Cache::new("t", geometry, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        cache
            .write(Address::new(0x40), 8, 1, &mut mem, &mut ())
            .expect("warm");
        b.iter(|| {
            cache
                .write(Address::new(0x40), 8, 2, &mut mem, &mut ())
                .expect("hit")
        })
    });
    group.finish();
}

fn miss_paths(c: &mut Criterion) {
    let geometry = CacheGeometry::new(4096, 64, 2).expect("valid");
    let mut group = c.benchmark_group("cache_miss");
    group.throughput(Throughput::Elements(1));

    group.bench_function("conflict_stream", |b| {
        let mut cache = Cache::new("t", geometry, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        let mut i = 0u64;
        b.iter(|| {
            // Three lines rotating through a 2-way set: every access misses.
            let addr = Address::new((i % 3) * 4096);
            i += 1;
            cache.read(addr, 8, &mut mem, &mut ()).expect("ok")
        })
    });
    group.finish();
}

fn replacement_policies(c: &mut Criterion) {
    let geometry = CacheGeometry::new(4096, 64, 8).expect("valid");
    let mut group = c.benchmark_group("replacement");
    group.throughput(Throughput::Elements(1));
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Random { seed: 1 },
        ReplacementKind::TreePlru,
        ReplacementKind::Srrip,
    ] {
        group.bench_with_input(
            BenchmarkId::new("thrash", kind.to_string()),
            &kind,
            |b, &kind| {
                let mut cache = Cache::new("t", geometry, kind);
                let mut mem = MainMemory::new();
                let mut i = 0u64;
                b.iter(|| {
                    // 9 lines over an 8-way set: constant evictions.
                    let addr = Address::new((i % 9) * 4096);
                    i += 1;
                    cache.read(addr, 8, &mut mem, &mut ()).expect("ok")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, hit_paths, miss_paths, replacement_policies);
criterion_main!(benches);

//! Whole-run checkpoint assembly for the stream-replay driver.
//!
//! A `.ctrs` file written here captures everything the `tracegen
//! stream-replay` two-pass comparison needs to resume after a kill:
//!
//! * `cache` — the in-flight pass's full simulator state, via
//!   [`cnt_cache::CntCache`]'s `Checkpointable` impl (lines, D/H
//!   metadata with protection check bits, predictor state, the deferred
//!   update FIFO, replacement state, statistics, and the energy
//!   accumulators);
//! * `obs` — the process-wide metrics registry plus every snapshot
//!   already recorded to the sink, so a resumed metrics stream continues
//!   instead of resetting;
//! * `driver` — which pass was running, the completed baseline outcome
//!   (if any), and the mid-pass [`ReplayCursor`].
//!
//! The manifest binds the file to its experiment: the paired config
//! fingerprint (both passes), the in-flight config's shape fingerprint
//! (for warm-fork sweeps), the trace-identity digest at the cursor, and
//! the cursor itself. [`load`] refuses — with a typed
//! [`CheckpointError`] and before any state is touched — any file whose
//! structure, CRCs, or config fingerprint disagree; the trace identity
//! is checked by the caller once its reader has seeked to the cursor.

use std::path::Path;

use cnt_cache::{CntCache, CntCacheConfig};
use cnt_obs::{MetricValue, Snapshot};
use cnt_trace::{fnv1a_extend, CheckpointError, CheckpointFile, CheckpointManifest, FNV_OFFSET};
use serde::{Deserialize, Serialize};

use crate::stream::{ReplayCursor, StreamOutcome};

/// Section carrying the observability state.
pub const SECTION_OBS: &str = "obs";
/// Section carrying the two-pass driver state.
pub const SECTION_DRIVER: &str = "driver";

/// Checkpointed observability state: the registry export plus every
/// snapshot recorded to the sink so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObsState {
    /// Registry export, in registration order.
    pub metrics: Vec<(String, MetricValue)>,
    /// Recorded snapshots, sorted by (experiment, epoch).
    pub snapshots: Vec<Snapshot>,
}

/// Captures the observability state the calling thread's replay is
/// feeding. With a thread-local session sink installed (a `cnt-serve`
/// session thread), this is that session's snapshots alone and **no**
/// registry export — the registry is process-wide and shared across
/// sessions, so freezing it into one tenant's checkpoint would leak the
/// other tenants' counters. Otherwise it is the process-wide registry
/// plus the global sink buffer, as the offline driver has always saved.
#[must_use]
pub fn capture_obs() -> ObsState {
    if cnt_obs::local_installed() {
        return ObsState {
            metrics: Vec::new(),
            snapshots: cnt_obs::local_pending(),
        };
    }
    ObsState {
        metrics: cnt_obs::registry().export(),
        snapshots: cnt_obs::pending(),
    }
}

/// Restores checkpointed observability state into whichever sink the
/// calling thread is using, so resumed counters continue from their
/// checkpointed values and the final JSONL stream contains the pre-kill
/// epochs. With a thread-local session sink installed the snapshots are
/// preloaded there (and the registry is left alone — see
/// [`capture_obs`]); otherwise this restores the process-wide registry
/// and re-seeds the global sink. Call after `cnt_obs::install` (or
/// `cnt_obs::install_local`) and before restarting any replay.
pub fn restore_obs(state: ObsState) {
    if cnt_obs::local_installed() {
        cnt_obs::preload_local(state.snapshots);
        return;
    }
    cnt_obs::registry().restore(&state.metrics);
    cnt_obs::preload(state.snapshots);
}

/// The stream-replay driver's own state across its two passes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverState {
    /// Pass in flight when the checkpoint was taken: 0 = baseline,
    /// 1 = CNT (adaptive).
    pub pass: u32,
    /// The completed baseline outcome (present once `pass == 1`).
    pub baseline: Option<StreamOutcome>,
    /// Mid-pass replay cursor.
    pub cursor: ReplayCursor,
    /// Deterministic replay ids allocated before the checkpoint. A
    /// resumed process adopts the in-flight id from the cursor, so it
    /// must burn this many ids up front for later fresh replays to get
    /// the same names as in the uninterrupted run.
    pub replay_ids_allocated: u64,
    /// The metrics epoch length the run was started with; a resume must
    /// use the same value (or none, matching).
    pub metrics_every: Option<u64>,
}

/// Folds the two per-pass config fingerprints into the manifest's single
/// `config_fingerprint` slot.
#[must_use]
pub fn pair_fingerprint(first: u64, second: u64) -> u64 {
    fnv1a_extend(
        fnv1a_extend(FNV_OFFSET, &first.to_le_bytes()),
        &second.to_le_bytes(),
    )
}

fn encode_json<T: Serialize>(section: &str, value: &T) -> Result<Vec<u8>, CheckpointError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| CheckpointError::BadState {
            section: section.to_string(),
            what: e.to_string(),
        })
}

fn decode_json<T: Deserialize>(section: &str, bytes: &[u8]) -> Result<T, CheckpointError> {
    let text = std::str::from_utf8(bytes).map_err(|e| CheckpointError::BadState {
        section: section.to_string(),
        what: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| CheckpointError::BadState {
        section: section.to_string(),
        what: e.to_string(),
    })
}

/// Assembles the complete `.ctrs` for one stream-replay checkpoint.
/// `configs` is the (baseline, CNT) pass pair; `trace_identity` is the
/// reader's digest at the cursor.
///
/// # Errors
///
/// [`CheckpointError::BadState`] if any component fails to serialize.
pub fn build(
    cache: &CntCache,
    configs: (&CntCacheConfig, &CntCacheConfig),
    trace_identity: u64,
    driver: &DriverState,
) -> Result<CheckpointFile, CheckpointError> {
    let manifest = CheckpointManifest {
        config_fingerprint: pair_fingerprint(configs.0.fingerprint(), configs.1.fingerprint()),
        shape_fingerprint: cache.config().shape_fingerprint(),
        trace_identity,
        resume_cursor: driver.cursor.chunk,
        accesses: driver.cursor.accesses,
    };
    let mut file = CheckpointFile::new(manifest);
    file.add_component(cache)?;
    file.add_section(SECTION_OBS, encode_json(SECTION_OBS, &capture_obs())?);
    file.add_section(SECTION_DRIVER, encode_json(SECTION_DRIVER, driver)?);
    Ok(file)
}

/// Reads and validates a stream-replay `.ctrs`: structure and CRCs (via
/// [`CheckpointFile::read`]), the paired config fingerprint, and the
/// internal consistency of the driver section against the manifest.
/// Nothing is restored yet — the caller applies the returned state only
/// after the trace identity also checks out.
///
/// # Errors
///
/// Every rejection is a typed [`CheckpointError`]; no partially-valid
/// state is ever returned.
pub fn load(
    path: &Path,
    expected_config: u64,
) -> Result<(CheckpointFile, DriverState, ObsState), CheckpointError> {
    let file = CheckpointFile::read(path)?;
    if file.manifest.config_fingerprint != expected_config {
        return Err(CheckpointError::ConfigMismatch {
            expected: expected_config,
            found: file.manifest.config_fingerprint,
        });
    }
    let driver = decode_driver(&file)?;
    let obs: ObsState = decode_json(SECTION_OBS, file.require(SECTION_OBS)?)?;
    Ok((file, driver, obs))
}

/// Reads a `.ctrs` for warm-forking: validates structure, CRCs, and the
/// driver section's internal consistency, but **not** the exact config
/// pair — a fork intentionally varies non-shape knobs. Callers gate on
/// `manifest.shape_fingerprint` against each fork's configuration
/// instead, and still verify the trace identity after seeking.
///
/// # Errors
///
/// As [`load`], minus [`CheckpointError::ConfigMismatch`].
pub fn load_for_fork(path: &Path) -> Result<(CheckpointFile, DriverState), CheckpointError> {
    let file = CheckpointFile::read(path)?;
    let driver = decode_driver(&file)?;
    Ok((file, driver))
}

fn decode_driver(file: &CheckpointFile) -> Result<DriverState, CheckpointError> {
    let driver: DriverState = decode_json(SECTION_DRIVER, file.require(SECTION_DRIVER)?)?;
    if driver.cursor.chunk != file.manifest.resume_cursor
        || driver.cursor.accesses != file.manifest.accesses
    {
        return Err(CheckpointError::BadState {
            section: SECTION_DRIVER.to_string(),
            what: format!(
                "driver cursor (chunk {}, {} accesses) disagrees with the manifest \
                 (chunk {}, {} accesses)",
                driver.cursor.chunk,
                driver.cursor.accesses,
                file.manifest.resume_cursor,
                file.manifest.accesses
            ),
        });
    }
    Ok(driver)
}

/// Checks the reader's trace-identity digest (after seeking to the
/// cursor) against the checkpoint's.
///
/// # Errors
///
/// [`CheckpointError::TraceMismatch`] when they differ — the `.ctr` on
/// disk is not the trace the checkpoint was taken over.
pub fn verify_trace_identity(
    manifest_identity: u64,
    reader_identity: u64,
) -> Result<(), CheckpointError> {
    if manifest_identity == reader_identity {
        Ok(())
    } else {
        Err(CheckpointError::TraceMismatch {
            expected: reader_identity,
            found: manifest_identity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_cache::EncodingPolicy;

    fn dcache(policy: EncodingPolicy) -> CntCacheConfig {
        crate::runner::dcache_config("L1D", policy)
    }

    #[test]
    fn build_load_round_trip() {
        let base = dcache(EncodingPolicy::None);
        let cnt = dcache(EncodingPolicy::adaptive_default());
        let cache = CntCache::new(cnt.clone()).expect("valid");
        let driver = DriverState {
            pass: 1,
            baseline: None,
            cursor: ReplayCursor {
                chunk: 7,
                accesses: 700,
                ..ReplayCursor::default()
            },
            replay_ids_allocated: 2,
            metrics_every: Some(100),
        };
        let file = build(&cache, (&base, &cnt), 0xABCD, &driver).expect("builds");
        let bytes = file.to_bytes();

        let dir = std::env::temp_dir().join("cnt_ckpt_round_trip");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trip.ctrs");
        file.write_atomic(&path).expect("writes");
        assert_eq!(std::fs::read(&path).expect("reads back"), bytes);

        let expected = pair_fingerprint(base.fingerprint(), cnt.fingerprint());
        let (loaded, driver2, _obs) = load(&path, expected).expect("loads");
        assert_eq!(loaded.manifest.trace_identity, 0xABCD);
        assert_eq!(loaded.manifest.resume_cursor, 7);
        assert_eq!(driver2.pass, 1);
        assert_eq!(driver2.cursor.accesses, 700);
        verify_trace_identity(loaded.manifest.trace_identity, 0xABCD).expect("same trace");
        assert!(matches!(
            verify_trace_identity(loaded.manifest.trace_identity, 0xDCBA),
            Err(CheckpointError::TraceMismatch { .. })
        ));

        // The wrong config pair is refused before anything decodes.
        assert!(matches!(
            load(
                &path,
                pair_fingerprint(cnt.fingerprint(), base.fingerprint())
            ),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}

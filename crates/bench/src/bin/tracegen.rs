//! Generates, converts, and replays workload traces.
//!
//! Besides inspecting the built-in kernels (`list`/`stats`/`dump`/`text`)
//! this is the CLI front end of the `cnt-trace` streaming pipeline:
//! `pack` converts JSON/text traces into the chunked `.ctr` binary form,
//! `pack-synth` streams a synthetic workload straight to disk without
//! materializing it, `unpack` recovers text/JSON, and `stream-replay`
//! runs a `.ctr` file through the simulator in bounded memory with
//! chunk-parallel decode.
//!
//! ```text
//! tracegen list
//! tracegen stats matmul
//! tracegen dump quicksort > quicksort_trace.json
//! tracegen synth --reads 0.8 --density 0.1 --accesses 5000 > synth.json
//! tracegen pack quicksort_trace.json quicksort.ctr --chunk 1024
//! tracegen pack-synth big.ctr --accesses 50000000 --density 0.1
//! tracegen unpack quicksort.ctr --json
//! tracegen stream-replay big.ctr --budget-mib 8 --jobs 4
//! ```
//!
//! Flag parsing is strict: unknown flags, missing values, non-finite or
//! out-of-range fractions, and stray positional arguments are all errors
//! (exit code 2), never silent defaults.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use cnt_bench::ckpt;
use cnt_bench::cli::{flag_value, fraction_flag, int_flag, one_positional, CmdError};
use cnt_bench::driver::{
    restore_resume_obs, run_two_pass, CheckpointPlan, CheckpointStore, ResumeState, SessionPlan,
    SingleFileStore,
};
use cnt_bench::pool;
use cnt_cache::EncodingPolicy;
use cnt_import::{import_file, ImportOptions, SourceFormat};
use cnt_sim::trace::Trace;
use cnt_trace::{
    pack_accesses_with, pack_trace_with, read_trace, rotate, CheckpointRotator, CorruptionPolicy,
    PackSummary, ReadOptions, StreamReader, WriteOptions,
};
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use cnt_workloads::{suite_extended, Workload};

const USAGE: &str = "usage:
  tracegen list
  tracegen stats <kernel>
  tracegen dump <kernel>            # JSON to stdout
  tracegen text <kernel>            # `KIND ADDR WIDTH [VALUE]` lines to stdout
  tracegen replay <file.trace>      # run a text trace: baseline vs CNT-Cache
  tracegen synth [--reads F] [--density F] [--accesses N] [--lines N] [--seed N]
  tracegen pack <in.json|in.trace> <out.ctr> [--chunk N] [--compress]
  tracegen pack-synth <out.ctr> [synth flags] [--chunk N] [--compress]
  tracegen import <in> <out.ctr> [--format champsim|memtrace] [--lenient]
                  [--chunk N] [--compress] [--report FILE.json]
                  # in: ChampSim binary or memtrace text, plain or .gz
  tracegen unpack <in.ctr> [--json]
  tracegen stream-replay <file.ctr> [--budget-mib N] [--skip-corrupt]
                         [--jobs N | --seq]
                         [--metrics-out FILE [--metrics-every N]]
                         [--checkpoint-every N [--checkpoint-to FILE]
                          [--checkpoint-keep K]]
                         [--resume FILE.ctrs|FAMILY]";

use CmdError::{Runtime, Usage};

/// Every subcommand, for the unknown-subcommand error.
const SUBCOMMANDS: &[&str] = &[
    "list",
    "stats",
    "dump",
    "text",
    "replay",
    "synth",
    "pack",
    "pack-synth",
    "unpack",
    "import",
    "stream-replay",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let rest = &args[1..];
    let result = match args[0].as_str() {
        "list" => cmd_list(rest),
        "stats" => cmd_kernel(rest, |w| print_stats(&w.name, &w.description, &w.trace)),
        "dump" => cmd_dump(rest),
        "text" => cmd_kernel(rest, |w| print!("{}", w.trace.to_text())),
        "replay" => cmd_replay(rest),
        "synth" => cmd_synth(rest),
        "pack" => cmd_pack(rest),
        "pack-synth" => cmd_pack_synth(rest),
        "unpack" => cmd_unpack(rest),
        "import" => cmd_import(rest),
        "stream-replay" => cmd_stream_replay(rest),
        other => Err(Usage(format!(
            "unknown subcommand `{other}` (known: {})",
            SUBCOMMANDS.join(", ")
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- parsing
// (The strict flag helpers live in `cnt_bench::cli`, shared with the
// other bench bins.)

/// Parses the shared synthetic-spec flags; `--chunk` is accepted only
/// when `allow_chunk` (the packing subcommand).
fn parse_synth(
    args: &[String],
    allow_chunk: bool,
) -> Result<(SyntheticSpec, WriteOptions), CmdError> {
    let mut spec = SyntheticSpec {
        accesses: 10_000,
        footprint_lines: 64,
        read_fraction: 0.7,
        ones_density: 0.25,
        pattern: AddressPattern::UniformRandom,
        seed: 7,
    };
    let mut options = WriteOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--reads" => spec.read_fraction = fraction_flag(&mut iter, "--reads")?,
            "--density" => spec.ones_density = fraction_flag(&mut iter, "--density")?,
            "--accesses" => spec.accesses = int_flag(&mut iter, "--accesses")?,
            "--lines" => {
                spec.footprint_lines = int_flag(&mut iter, "--lines")?;
                if spec.footprint_lines == 0 {
                    return Err(Usage("--lines must be at least 1".into()));
                }
            }
            "--seed" => spec.seed = int_flag(&mut iter, "--seed")?,
            "--chunk" if allow_chunk => {
                options.chunk_accesses = int_flag(&mut iter, "--chunk")?;
                if options.chunk_accesses == 0 {
                    return Err(Usage("--chunk must be at least 1".into()));
                }
            }
            "--compress" if allow_chunk => options.compress = true,
            other => return Err(Usage(format!("unknown flag `{other}` for synth"))),
        }
    }
    Ok((spec, options))
}

// ------------------------------------------------------------ subcommands

fn cmd_list(args: &[String]) -> Result<(), CmdError> {
    if !args.is_empty() {
        return Err(Usage("`list` takes no arguments".into()));
    }
    for w in suite_extended() {
        println!("{:<16} {}", w.name, w.description);
    }
    Ok(())
}

fn find_kernel(name: &str) -> Result<Workload, CmdError> {
    suite_extended()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| Runtime(format!("unknown kernel `{name}` (try `tracegen list`)")))
}

fn cmd_kernel(args: &[String], show: impl Fn(&Workload)) -> Result<(), CmdError> {
    let name = one_positional(args, "kernel name")?;
    show(&find_kernel(name)?);
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), CmdError> {
    let name = one_positional(args, "kernel name")?;
    let w = find_kernel(name)?;
    let json = serde_json::to_string(&w.trace)
        .map_err(|e| Runtime(format!("serialization failed: {e}")))?;
    println!("{json}");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), CmdError> {
    let path = one_positional(args, "trace path")?;
    let trace = load_text_or_json(path)?;
    print_stats(path, "external trace", &trace);
    let base = cnt_bench::runner::run_dcache(EncodingPolicy::None, &trace);
    let cnt = cnt_bench::runner::run_dcache(EncodingPolicy::adaptive_default(), &trace);
    println!();
    print_comparison(&base, &cnt);
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), CmdError> {
    let (spec, _) = parse_synth(args, false)?;
    let trace = spec.generate();
    let json =
        serde_json::to_string(&trace).map_err(|e| Runtime(format!("serialization failed: {e}")))?;
    eprintln!("# {spec:?}");
    println!("{json}");
    Ok(())
}

fn cmd_pack(args: &[String]) -> Result<(), CmdError> {
    let (positionals, flags) = split_positionals(args);
    let [input, output] = positionals[..] else {
        return Err(Usage("`pack` needs <in.json|in.trace> <out.ctr>".into()));
    };
    let mut options = WriteOptions::default();
    let mut iter = flags.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--chunk" => {
                options.chunk_accesses = int_flag(&mut iter, "--chunk")?;
                if options.chunk_accesses == 0 {
                    return Err(Usage("--chunk must be at least 1".into()));
                }
            }
            "--compress" => options.compress = true,
            other => return Err(Usage(format!("unknown flag `{other}` for pack"))),
        }
    }
    let trace = load_text_or_json(input)?;
    let summary = write_ctr(output, |sink| pack_trace_with(&trace, sink, options))?;
    print_pack_summary(output, &summary);
    Ok(())
}

fn cmd_pack_synth(args: &[String]) -> Result<(), CmdError> {
    let (positionals, flags) = split_positionals(args);
    let [output] = positionals[..] else {
        return Err(Usage("`pack-synth` needs <out.ctr>".into()));
    };
    let (spec, options) = parse_synth(&flags, true)?;
    // The spec streams straight into the writer: memory stays bounded by
    // one chunk however many accesses are requested.
    let summary = write_ctr(output, |sink| {
        pack_accesses_with(spec.stream(), sink, options)
    })?;
    eprintln!("# {spec:?}");
    print_pack_summary(output, &summary);
    Ok(())
}

fn cmd_unpack(args: &[String]) -> Result<(), CmdError> {
    let (positionals, flags) = split_positionals(args);
    let [input] = positionals[..] else {
        return Err(Usage("`unpack` needs <in.ctr>".into()));
    };
    let mut as_json = false;
    for arg in &flags {
        match arg.as_str() {
            "--json" => as_json = true,
            other => return Err(Usage(format!("unknown flag `{other}` for unpack"))),
        }
    }
    let file =
        std::fs::File::open(input).map_err(|e| Runtime(format!("cannot read `{input}`: {e}")))?;
    let trace = read_trace(std::io::BufReader::new(file), ReadOptions::default())
        .map_err(|e| Runtime(format!("`{input}`: {e}")))?;
    if as_json {
        let json = serde_json::to_string(&trace)
            .map_err(|e| Runtime(format!("serialization failed: {e}")))?;
        println!("{json}");
    } else {
        print!("{}", trace.to_text());
    }
    Ok(())
}

/// `tracegen import <in> <out.ctr>`: converts a real-application
/// capture (ChampSim-style binary or memtrace-style text, plain or
/// gzip'd) into the repo's `.ctr` format. Strict by default — the
/// first malformed record is a usage-class failure (exit 2) naming its
/// line or byte offset; `--lenient` opts into drop-and-count.
fn cmd_import(args: &[String]) -> Result<(), CmdError> {
    let (positionals, flags) = split_positionals(args);
    let [input, output] = positionals[..] else {
        return Err(Usage("`import` needs <in> <out.ctr>".into()));
    };
    let mut opts = ImportOptions::default();
    let mut report_out: Option<String> = None;
    let mut iter = flags.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let raw = flag_value(&mut iter, "--format")?;
                opts.format = Some(SourceFormat::from_flag(raw).ok_or_else(|| {
                    Usage(format!(
                        "--format: `{raw}` is not a known format (champsim, memtrace)"
                    ))
                })?);
            }
            "--lenient" => opts.lenient = true,
            "--chunk" => {
                opts.chunk_accesses = int_flag(&mut iter, "--chunk")?;
                if opts.chunk_accesses == 0 {
                    return Err(Usage("--chunk must be at least 1".into()));
                }
            }
            "--compress" => opts.compress = true,
            "--report" => report_out = Some(flag_value(&mut iter, "--report")?.into()),
            other => return Err(Usage(format!("unknown flag `{other}` for import"))),
        }
    }
    // Parse failures exit 2 (the input contract was violated, pointing
    // at line/offset context); I/O failures exit 1.
    let report = import_file(Path::new(input), Path::new(output), opts).map_err(|e| match e {
        cnt_import::ImportError::Io(_) | cnt_import::ImportError::Trace(_) => {
            Runtime(format!("`{input}`: {e}"))
        }
        other => Usage(format!("`{input}`: {other}")),
    })?;
    eprintln!(
        "# imported {} ({}{}) -> {} accesses ({} R / {} W / {} I), {} chunks, {} dropped",
        report.source,
        report.format,
        if report.gzip { ", gzip" } else { "" },
        report.accesses,
        report.reads,
        report.writes,
        report.ifetches,
        report.chunks,
        report.dropped,
    );
    println!(
        "packed  {}: {} chunks, {} accesses, {} payload ({} on disk), identity {}",
        output,
        report.chunks,
        report.accesses,
        mib(report.payload_bytes),
        mib(report.output_bytes),
        report.identity
    );
    if let Some(path) = report_out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| Runtime(format!("serializing import report failed: {e}")))?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| Runtime(format!("cannot write `{path}`: {e}")))?;
    }
    Ok(())
}

fn cmd_stream_replay(args: &[String]) -> Result<(), CmdError> {
    let (positionals, flags) = split_positionals(args);
    let [input] = positionals[..] else {
        return Err(Usage("`stream-replay` needs <file.ctr>".into()));
    };
    let mut budget_mib: usize = 8;
    let mut corruption = CorruptionPolicy::FailFast;
    let mut jobs: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut ckpt_every: Option<u64> = None;
    let mut ckpt_to: Option<String> = None;
    let mut ckpt_keep: Option<usize> = None;
    let mut resume_from: Option<String> = None;
    let mut iter = flags.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget-mib" => {
                budget_mib = int_flag(&mut iter, "--budget-mib")?;
                if budget_mib == 0 {
                    return Err(Usage("--budget-mib must be at least 1".into()));
                }
            }
            "--skip-corrupt" => corruption = CorruptionPolicy::SkipWithReport,
            "--seq" => jobs = Some(1),
            "--jobs" | "-j" => {
                let n: usize = int_flag(&mut iter, "--jobs")?;
                if n == 0 {
                    return Err(Usage("--jobs needs a positive integer".into()));
                }
                jobs = Some(n);
            }
            "--metrics-out" => metrics_out = Some(flag_value(&mut iter, "--metrics-out")?.into()),
            "--metrics-every" => {
                let n: u64 = int_flag(&mut iter, "--metrics-every")?;
                if n == 0 {
                    return Err(Usage("--metrics-every needs a positive integer".into()));
                }
                metrics_every = Some(n);
            }
            "--checkpoint-every" => {
                let n: u64 = int_flag(&mut iter, "--checkpoint-every")?;
                if n == 0 {
                    return Err(Usage("--checkpoint-every needs a positive integer".into()));
                }
                ckpt_every = Some(n);
            }
            "--checkpoint-to" => ckpt_to = Some(flag_value(&mut iter, "--checkpoint-to")?.into()),
            "--checkpoint-keep" => {
                let k: usize = int_flag(&mut iter, "--checkpoint-keep")?;
                if k == 0 {
                    return Err(Usage("--checkpoint-keep needs a positive integer".into()));
                }
                ckpt_keep = Some(k);
            }
            "--resume" => resume_from = Some(flag_value(&mut iter, "--resume")?.into()),
            other => return Err(Usage(format!("unknown flag `{other}` for stream-replay"))),
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        return Err(Usage("--metrics-every needs --metrics-out".into()));
    }
    if ckpt_to.is_some() && ckpt_every.is_none() {
        return Err(Usage("--checkpoint-to needs --checkpoint-every".into()));
    }
    if ckpt_keep.is_some() && ckpt_every.is_none() {
        return Err(Usage("--checkpoint-keep needs --checkpoint-every".into()));
    }
    if (ckpt_every.is_some() || resume_from.is_some()) && corruption != CorruptionPolicy::FailFast {
        // Under skip-with-report the consumed-chunk count diverges from
        // the reader cursor; a resume could silently replay the wrong
        // suffix of the trace.
        return Err(Usage(
            "--checkpoint-every/--resume cannot be combined with --skip-corrupt".into(),
        ));
    }
    let metrics_every_effective = metrics_out
        .as_ref()
        .map(|_| metrics_every.unwrap_or(10_000));

    let (base_cfg, cnt_cfg) = cnt_bench::driver::stream_config_pair();

    // Validate a resume checkpoint fully before touching any process
    // state: structure, CRCs, config fingerprint, metrics consistency.
    // `--resume` accepts either an exact `.ctrs` file or a rotation
    // family base, which resolves to its newest generation.
    let resumed = match &resume_from {
        Some(rp) => {
            let resolved = rotate::resolve_resume(Path::new(rp))
                .map_err(|e| Runtime(format!("`{rp}`: {e}")))?
                .ok_or_else(|| {
                    Runtime(format!(
                        "`{rp}`: no checkpoint file or family generations found"
                    ))
                })?;
            let expected = ckpt::pair_fingerprint(base_cfg.fingerprint(), cnt_cfg.fingerprint());
            let (file, driver, obs) = ckpt::load(&resolved, expected)
                .map_err(|e| Runtime(format!("`{}`: {e}", resolved.display())))?;
            if driver.metrics_every != metrics_every_effective {
                return Err(Usage(format!(
                    "--resume: checkpoint was taken with metrics epoch {:?}, \
                     this invocation uses {:?} — metrics flags must match",
                    driver.metrics_every, metrics_every_effective
                )));
            }
            Some((file, driver, obs))
        }
        None => None,
    };

    pool::set_jobs(jobs.unwrap_or_else(pool::default_jobs));
    if let Some(every) = metrics_every_effective {
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }
    if let Some((_, driver, obs)) = &resumed {
        restore_resume_obs(driver, obs.clone());
        eprintln!(
            "resume: pass {} at chunk {} ({} accesses)",
            driver.pass, driver.cursor.chunk, driver.cursor.accesses
        );
    }
    let opts = ReadOptions {
        budget_bytes: budget_mib * 1024 * 1024,
        corruption,
    };
    let path = Path::new(input);

    // Peek at the header for the banner before either replay pass.
    {
        let file = std::fs::File::open(path)
            .map_err(|e| Runtime(format!("cannot read `{input}`: {e}")))?;
        let reader = StreamReader::new(std::io::BufReader::new(file), opts)
            .map_err(|e| Runtime(format!("`{input}`: {e}")))?;
        let header = reader.header();
        println!(
            "header:     .ctr v{}, chunk target {} accesses",
            header.version, header.chunk_target
        );
    }

    // `file.ctr` checkpoints to `file.ctrs` unless --checkpoint-to says
    // otherwise.
    let ckpt_path = ckpt_to.unwrap_or_else(|| {
        if input.ends_with(".ctr") {
            format!("{input}s")
        } else {
            format!("{input}.ctrs")
        }
    });
    let ckpt_path = Path::new(&ckpt_path);

    // With --checkpoint-keep the path names a rotation family (numbered
    // generations, GC'd to the newest K); without it, the original
    // atomic overwrite-in-place single file.
    let mut store: Box<dyn CheckpointStore> = match ckpt_keep {
        Some(keep) => Box::new(
            CheckpointRotator::new(ckpt_path, keep)
                .map_err(|e| Runtime(format!("`{}`: {e}", ckpt_path.display())))?,
        ),
        None => Box::new(SingleFileStore(ckpt_path.to_path_buf())),
    };
    let plan = SessionPlan {
        input: path,
        opts,
        base_cfg: &base_cfg,
        cnt_cfg: &cnt_cfg,
        metrics_every: metrics_every_effective,
        checkpoint: ckpt_every.map(|every| CheckpointPlan {
            every,
            store: &mut *store,
        }),
        cancel: None,
    };
    let resume_state = resumed.map(|(file, driver, _)| ResumeState { file, driver });
    let outcome = run_two_pass(plan, resume_state.as_ref()).map_err(|e| Runtime(e.to_string()))?;
    let (base, cnt) = (outcome.base, outcome.cnt);

    let ingest = cnt.ingest;
    println!(
        "chunks:     {} read, {} consumed, {} skipped ({} CRC failures, {} bad payloads)",
        ingest.chunks_read,
        ingest.chunks_consumed,
        ingest.chunks_skipped,
        ingest.crc_failures,
        ingest.decode_failures
    );
    println!(
        "ingest:     {:.2} MiB read, {:.2} MiB decoded, peak buffered {:.2} MiB (budget {budget_mib} MiB)",
        mib(ingest.bytes_read),
        mib(ingest.bytes_decoded),
        mib(ingest.peak_buffered_bytes)
    );
    println!("accesses:   {}", cnt.accesses);
    println!();
    print_comparison(&base.report, &cnt.report);

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = cnt_obs::to_jsonl(&snapshots)
            .map_err(|e| Runtime(format!("cannot serialize metrics: {e}")))?;
        std::fs::write(&path, jsonl).map_err(|e| Runtime(format!("cannot write {path}: {e}")))?;
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    Ok(())
}

// --------------------------------------------------------------- helpers

/// Splits arguments into leading positionals and the flag tail (the
/// first `--`-prefixed argument starts the flags).
fn split_positionals(args: &[String]) -> (Vec<&String>, Vec<String>) {
    let boundary = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    (args[..boundary].iter().collect(), args[boundary..].to_vec())
}

fn load_text_or_json(path: &str) -> Result<Trace, CmdError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Runtime(format!("cannot read `{path}`: {e}")))?;
    if path.ends_with(".json") {
        serde_json::from_str(&text).map_err(|e| Runtime(format!("cannot parse `{path}`: {e}")))
    } else {
        text.parse()
            .map_err(|e| Runtime(format!("cannot parse `{path}`: {e}")))
    }
}

fn write_ctr(
    path: &str,
    pack: impl FnOnce(
        &mut std::io::BufWriter<std::fs::File>,
    ) -> Result<PackSummary, cnt_trace::TraceError>,
) -> Result<PackSummary, CmdError> {
    let file =
        std::fs::File::create(path).map_err(|e| Runtime(format!("cannot create `{path}`: {e}")))?;
    let mut sink = std::io::BufWriter::new(file);
    let summary = pack(&mut sink).map_err(|e| Runtime(format!("cannot write `{path}`: {e}")))?;
    sink.flush()
        .map_err(|e| Runtime(format!("cannot write `{path}`: {e}")))?;
    Ok(summary)
}

fn print_pack_summary(path: &str, summary: &PackSummary) {
    println!(
        "packed {} accesses into {} chunks ({:.2} MiB payload) -> {path}",
        summary.accesses,
        summary.chunks,
        mib(summary.payload_bytes)
    );
}

fn print_comparison(base: &cnt_cache::EnergyReport, cnt: &cnt_cache::EnergyReport) {
    println!("baseline:  {:.1}", base.total());
    println!("CNT-Cache: {:.1}", cnt.total());
    println!("saving:    {:.2}%", cnt.saving_vs(base));
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn print_stats(name: &str, description: &str, trace: &Trace) {
    println!("workload:   {name}");
    println!("detail:     {description}");
    println!("accesses:   {}", trace.len());
    println!("writes:     {:.2}%", trace.write_fraction() * 100.0);
    println!(
        "footprint:  {} lines ({} KiB)",
        trace.footprint_blocks(),
        trace.footprint_blocks() * 64 / 1024
    );
    let (mut ones, mut bits) = (0u64, 0u64);
    for a in trace.iter().filter(|a| a.is_write()) {
        ones += u64::from(a.value.count_ones());
        bits += u64::from(a.width) * 8;
    }
    if bits > 0 {
        println!(
            "write ones: {:.2}% bit density",
            ones as f64 / bits as f64 * 100.0
        );
    }
}

//! Generates workload traces as JSON and prints their summary statistics.
//!
//! Useful for inspecting what the kernels actually emit and for feeding
//! the same traces to external tools.
//!
//! ```text
//! tracegen list
//! tracegen stats matmul
//! tracegen dump quicksort > quicksort_trace.json
//! tracegen synth --reads 0.8 --density 0.1 --accesses 5000 > synth.json
//! ```

use std::process::ExitCode;

use cnt_sim::trace::Trace;
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use cnt_workloads::{suite_extended, Workload};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  tracegen list");
    eprintln!("  tracegen stats <kernel>");
    eprintln!("  tracegen dump <kernel>          # JSON to stdout");
    eprintln!("  tracegen text <kernel>          # `KIND ADDR WIDTH [VALUE]` lines to stdout");
    eprintln!("  tracegen replay <file.trace>    # run a text trace: baseline vs CNT-Cache");
    eprintln!("  tracegen synth [--reads F] [--density F] [--accesses N] [--lines N] [--seed N]");
    ExitCode::from(2)
}

fn find(name: &str) -> Option<Workload> {
    suite_extended().into_iter().find(|w| w.name == name)
}

fn print_stats(name: &str, description: &str, trace: &Trace) {
    println!("workload:   {name}");
    println!("detail:     {description}");
    println!("accesses:   {}", trace.len());
    println!("writes:     {:.2}%", trace.write_fraction() * 100.0);
    println!(
        "footprint:  {} lines ({} KiB)",
        trace.footprint_blocks(),
        trace.footprint_blocks() * 64 / 1024
    );
    let (mut ones, mut bits) = (0u64, 0u64);
    for a in trace.iter().filter(|a| a.is_write()) {
        ones += u64::from(a.value.count_ones());
        bits += u64::from(a.width) * 8;
    }
    if bits > 0 {
        println!(
            "write ones: {:.2}% bit density",
            ones as f64 / bits as f64 * 100.0
        );
    }
}

fn parse_flag(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for w in suite_extended() {
                println!("{:<16} {}", w.name, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("stats") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = find(name) else {
                eprintln!("unknown kernel `{name}` (try `tracegen list`)");
                return ExitCode::FAILURE;
            };
            print_stats(&w.name, &w.description, &w.trace);
            ExitCode::SUCCESS
        }
        Some("dump") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = find(name) else {
                eprintln!("unknown kernel `{name}` (try `tracegen list`)");
                return ExitCode::FAILURE;
            };
            match serde_json::to_string(&w.trace) {
                Ok(json) => {
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("text") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(w) = find(name) else {
                eprintln!("unknown kernel `{name}` (try `tracegen list`)");
                return ExitCode::FAILURE;
            };
            print!("{}", w.trace.to_text());
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let trace: Trace = match text.parse() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print_stats(path, "external trace", &trace);
            let base = cnt_bench::runner::run_dcache(cnt_cache::EncodingPolicy::None, &trace);
            let cnt = cnt_bench::runner::run_dcache(
                cnt_cache::EncodingPolicy::adaptive_default(),
                &trace,
            );
            println!();
            println!("baseline:  {:.1}", base.total());
            println!("CNT-Cache: {:.1}", cnt.total());
            println!("saving:    {:.2}%", cnt.saving_vs(&base));
            ExitCode::SUCCESS
        }
        Some("synth") => {
            let spec = SyntheticSpec {
                accesses: parse_flag(&args, "--accesses", 10_000.0) as usize,
                footprint_lines: parse_flag(&args, "--lines", 64.0) as usize,
                read_fraction: parse_flag(&args, "--reads", 0.7),
                ones_density: parse_flag(&args, "--density", 0.25),
                pattern: AddressPattern::UniformRandom,
                seed: parse_flag(&args, "--seed", 7.0) as u64,
            };
            let trace = spec.generate();
            match serde_json::to_string(&trace) {
                Ok(json) => {
                    eprintln!("# {spec:?}");
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

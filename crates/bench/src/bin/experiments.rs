//! Regenerates the CNT-Cache evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all              # run everything in order
//! experiments fig3 table1     # run specific experiments
//! experiments --jobs 4 all    # cap the worker pool at 4 threads
//! experiments --seq all       # force fully sequential execution
//! experiments --list           # list available ids
//! experiments --metrics-out metrics.jsonl --metrics-every 10000 fig9
//!                              # also stream epoch snapshots as JSONL
//! experiments --metrics-final fig13b
//!                              # dump registry counters (sorted) at exit
//! ```
//!
//! Experiments are computed in parallel on a shared thread pool but the
//! reports are always printed in submission order, so the output is
//! byte-identical whatever `--jobs` is set to. The same holds for the
//! metrics stream: snapshots are sorted by (replay id, epoch) before
//! writing, and replay ids are deterministic, so the JSONL file is also
//! byte-identical across `--jobs` settings. Metrics notices go to
//! stderr; stdout carries only the reports.

use std::process::ExitCode;

/// Default snapshot epoch length (accesses) when only `--metrics-out`
/// is given.
const DEFAULT_METRICS_EVERY: u64 = 10_000;

fn usage() {
    eprintln!(
        "usage: experiments [--list] [--jobs N | --seq] [--trace FILE.ctr]... \
         [--metrics-out FILE [--metrics-every N]] [--metrics-final] <id>... | all"
    );
    eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in cnt_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // Parse flags; everything else is an experiment id.
    let mut ids: Vec<&str> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut metrics_final = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seq" => jobs = Some(1),
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("error: --trace needs a .ctr path");
                    return ExitCode::from(2);
                };
                traces.push(path.clone());
            }
            "--jobs" | "-j" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                }
                jobs = Some(n);
            }
            "--metrics-out" => {
                let Some(path) = iter.next() else {
                    eprintln!("error: --metrics-out needs a path");
                    return ExitCode::from(2);
                };
                metrics_out = Some(path.clone());
            }
            "--metrics-every" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("error: --metrics-every needs a positive integer");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("error: --metrics-every needs a positive integer");
                    return ExitCode::from(2);
                }
                metrics_every = Some(n);
            }
            "--metrics-final" => metrics_final = true,
            "all" => ids.extend_from_slice(cnt_bench::experiments::ALL),
            other => ids.push(other),
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        eprintln!("error: --metrics-every needs --metrics-out");
        return ExitCode::from(2);
    }
    if ids.is_empty() && traces.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    // Validate every id up front so a typo late in the list fails fast,
    // before any compute, and every unknown id is reported at once.
    let unknown: Vec<&str> = ids
        .iter()
        .copied()
        .filter(|id| !cnt_bench::experiments::is_known(id))
        .collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("error: unknown experiment id `{id}`");
        }
        eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
        return ExitCode::from(2);
    }

    cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));
    if metrics_out.is_some() {
        let every = metrics_every.unwrap_or(DEFAULT_METRICS_EVERY);
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }

    for (id, report) in ids.iter().zip(cnt_bench::experiments::run_many(&ids)) {
        match report {
            Ok(report) => {
                println!("==== {id} ====");
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // External `.ctr` traces replay streamed (bounded memory,
    // chunk-parallel decode) — baseline vs adaptive, like the built-in
    // policy comparisons.
    for path in &traces {
        use cnt_bench::stream::run_dcache_stream;
        use cnt_cache::EncodingPolicy;
        let opts = cnt_trace::ReadOptions::default();
        let run = |policy| run_dcache_stream(policy, std::path::Path::new(path), opts);
        let (base, cnt) = match (
            run(EncodingPolicy::None),
            run(EncodingPolicy::adaptive_default()),
        ) {
            (Ok(base), Ok(cnt)) => (base, cnt),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("==== trace:{path} ====");
        println!(
            "accesses:  {} ({} chunks, {} skipped)",
            cnt.accesses, cnt.ingest.chunks_read, cnt.ingest.chunks_skipped
        );
        println!("baseline:  {:.1}", base.report.total());
        println!("CNT-Cache: {:.1}", cnt.report.total());
        println!("saving:    {:.2}%", cnt.report.saving_vs(&base.report));
        println!();
    }

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = match cnt_obs::to_jsonl(&snapshots) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("error: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    // Sorted by name so the export is byte-identical whatever order the
    // worker pool first touched each metric in.
    if metrics_final {
        let mut export = cnt_obs::registry().export();
        export.sort_by(|a, b| a.0.cmp(&b.0));
        println!("==== final metrics ====");
        for (name, value) in export {
            println!("{name} {value}");
        }
    }
    ExitCode::SUCCESS
}

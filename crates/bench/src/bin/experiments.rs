//! Regenerates the CNT-Cache evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all              # run everything in order
//! experiments fig3 table1     # run specific experiments
//! experiments --jobs 4 all    # cap the worker pool at 4 threads
//! experiments --seq all       # force fully sequential execution
//! experiments --list           # list available ids
//! experiments --metrics-out metrics.jsonl --metrics-every 10000 fig9
//!                              # also stream epoch snapshots as JSONL
//! experiments --metrics-final fig13b
//!                              # dump registry counters (sorted) at exit
//! ```
//!
//! Experiments are computed in parallel on a shared thread pool but the
//! reports are always printed in submission order, so the output is
//! byte-identical whatever `--jobs` is set to. The same holds for the
//! metrics stream: snapshots are sorted by (replay id, epoch) before
//! writing, and replay ids are deterministic, so the JSONL file is also
//! byte-identical across `--jobs` settings. Metrics notices go to
//! stderr; stdout carries only the reports.

use std::process::ExitCode;

use cnt_bench::cli::{self, CmdError};

/// Default snapshot epoch length (accesses) when only `--metrics-out`
/// is given.
const DEFAULT_METRICS_EVERY: u64 = 10_000;

/// Default output path for the `--per-workload-baseline` record.
const DEFAULT_WORKLOADS_OUT: &str = "BENCH_workloads.json";

/// Hysteresis margins swept by `--warm-fork` (the paper default is 0.1).
const WARM_FORK_DELTA_TS: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

fn usage() {
    eprintln!(
        "usage: experiments [--list] [--jobs N | --seq] [--trace FILE.ctr]... \
         [--metrics-out FILE [--metrics-every N]] [--metrics-final] <id>... | all\n       \
         experiments --warm-fork FILE.ctrs --trace FILE.ctr   # ΔT sweep from a warmed checkpoint\n       \
         experiments --per-workload-baseline [--workloads GLOB] [--trace-dir DIR]... [--out FILE]\n                                            \
         # baseline-vs-adaptive energy table over the workload registry"
    );
    eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
}

/// Fans a ΔT (hysteresis) sweep out of one warmed checkpoint: every fork
/// restores the same mid-trace cache state, swaps in a different
/// hysteresis margin (a non-shape knob, so the restored state is valid
/// for every fork), and replays only the remaining tail of the trace.
/// The warmup cost is paid once — by the run that wrote the checkpoint —
/// instead of once per sweep point.
fn run_warm_fork(ckpt_path: &str, trace_path: &str) -> Result<(), String> {
    use cnt_bench::stream::{replay_stream_resumable, ReplayCursor};
    use cnt_cache::{AdaptiveParams, CntCache, EncodingPolicy};
    use cnt_trace::{ReadOptions, StreamReader};

    let (file, driver) = cnt_bench::ckpt::load_for_fork(std::path::Path::new(ckpt_path))
        .map_err(|e| format!("`{ckpt_path}`: {e}"))?;

    println!("==== warm-fork:{ckpt_path} ====");
    println!(
        "resume:    pass {} at chunk {} ({} accesses) over `{trace_path}`",
        driver.pass, driver.cursor.chunk, driver.cursor.accesses
    );
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12}",
        "delta_t", "total", "windows", "switches", "saving-vs-0"
    );
    let mut first_report = None;
    for delta_t in WARM_FORK_DELTA_TS {
        let config = cnt_bench::runner::dcache_config(
            "L1D",
            EncodingPolicy::Adaptive(AdaptiveParams {
                delta_t,
                ..AdaptiveParams::paper_default()
            }),
        );
        // The shape gate: geometry, protection, window, partitions must
        // match the checkpointed state; ΔT deliberately does not count.
        if config.shape_fingerprint() != file.manifest.shape_fingerprint {
            return Err(format!(
                "`{ckpt_path}`: checkpoint shape {:#018x} does not match the adaptive D-Cache \
                 shape {:#018x} — warm-fork needs a checkpoint taken during the adaptive \
                 (second) replay pass",
                file.manifest.shape_fingerprint,
                config.shape_fingerprint()
            ));
        }
        let mut cache = CntCache::new(config).expect("sweep configuration is valid");
        file.restore_component(&mut cache)
            .map_err(|e| format!("`{ckpt_path}`: {e}"))?;

        let f = std::fs::File::open(trace_path)
            .map_err(|e| format!("cannot read `{trace_path}`: {e}"))?;
        let mut reader = StreamReader::new(std::io::BufReader::new(f), ReadOptions::default())
            .map_err(|e| format!("`{trace_path}`: {e}"))?;
        reader
            .seek_to_chunk(driver.cursor.chunk)
            .map_err(|e| format!("`{trace_path}`: {e}"))?;
        cnt_bench::ckpt::verify_trace_identity(file.manifest.trace_identity, reader.identity())
            .map_err(|e| format!("`{trace_path}`: {e}"))?;

        // Forks run without a metrics stream: drop the original run's
        // experiment id and delta seed, keep the replay position.
        let cursor = ReplayCursor {
            experiment: None,
            delta_prev: Vec::new(),
            ..driver.cursor.clone()
        };
        replay_stream_resumable(&mut cache, &mut reader, Some(cursor), None, None)
            .map_err(|e| format!("`{trace_path}`: {e}"))?;
        cache.flush();
        let counters = *cache.encoding_counters();
        let report = cache.into_report();
        let saving = first_report
            .as_ref()
            .map(|first| format!("{:>11.2}%", report.saving_vs(first)))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{delta_t:<8.2} {:>14.1} {:>10} {:>10} {saving}",
            report.total(),
            counters.windows,
            counters.switches_applied
        );
        first_report.get_or_insert(report);
    }
    Ok(())
}

/// Replays every selected registry workload under the baseline
/// (no-encoding) policy and the paper-default adaptive policy, prints
/// the comparison as a markdown table, and writes the machine-readable
/// [`cnt_bench::WorkloadBenchRecord`] to `out`. Synthetic kernels and
/// imported `.ctr` captures run through the identical path, so the
/// table is an apples-to-apples energy comparison across sources.
fn run_per_workload_baseline(
    pattern: &str,
    trace_dirs: &[String],
    out: &str,
) -> Result<(), CmdError> {
    use cnt_bench::{WorkloadBenchRecord, WorkloadRow};
    use cnt_cache::EncodingPolicy;
    use cnt_sim::trace::AccessKind;
    use cnt_workloads::WorkloadRegistry;

    let mut registry = WorkloadRegistry::builtin();
    for dir in trace_dirs {
        let added = registry
            .add_trace_dir(std::path::Path::new(dir))
            .map_err(|e| CmdError::Runtime(format!("--trace-dir {dir}: {e}")))?;
        eprintln!("registry: {added} imported workload(s) from {dir}");
    }
    let selected = registry
        .select(pattern)
        .map_err(|e| CmdError::Usage(e.to_string()))?;

    // Load sequentially (imported entries do file IO), then fan the
    // deterministic energy replays out on the shared pool. Entries are
    // already sorted by id, so the rows come back sorted too.
    let mut loaded = Vec::with_capacity(selected.len());
    for entry in &selected {
        let workload = entry
            .load()
            .map_err(|e| CmdError::Runtime(format!("workload `{}`: {e}", entry.id)))?;
        loaded.push((entry.id.clone(), entry.source_kind(), workload));
    }
    let rows: Vec<WorkloadRow> = cnt_bench::pool::par_map(&loaded, |(id, source, workload)| {
        let base = cnt_bench::runner::run_dcache(EncodingPolicy::None, &workload.trace);
        let adaptive =
            cnt_bench::runner::run_dcache(EncodingPolicy::adaptive_default(), &workload.trace);
        let reads = workload
            .trace
            .iter()
            .filter(|a| matches!(a.kind, AccessKind::Read | AccessKind::InstrFetch))
            .count() as u64;
        let writes = workload
            .trace
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count() as u64;
        let baseline_total = base.total().femtojoules();
        let adaptive_total = adaptive.total().femtojoules();
        let saving = if baseline_total > 0.0 {
            100.0 * (baseline_total - adaptive_total) / baseline_total
        } else {
            0.0
        };
        WorkloadRow {
            id: id.clone(),
            source: (*source).to_string(),
            accesses: workload.trace.len() as u64,
            reads,
            writes,
            bits_written: base.breakdown.bits_written(),
            baseline_read_fj: base.breakdown.read_energy().femtojoules(),
            baseline_write_fj: base.breakdown.write_energy().femtojoules(),
            baseline_total_fj: baseline_total,
            adaptive_total_fj: adaptive_total,
            saving_percent: saving,
        }
    });

    let cores = cnt_bench::pool::default_jobs();
    let record = WorkloadBenchRecord {
        cores,
        policies_per_workload: 2,
        rows,
        skip_note: (cores < 4).then(|| {
            format!("measured on {cores} core(s); energy numbers are deterministic but do not read throughput from this box")
        }),
    };

    println!(
        "| workload | source | accesses | reads | writes | bits written | baseline read (fJ) | baseline write (fJ) | baseline total (fJ) | adaptive total (fJ) | saving |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for row in &record.rows {
        println!(
            "| `{}` | {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2}% |",
            row.id,
            row.source,
            row.accesses,
            row.reads,
            row.writes,
            row.bits_written,
            row.baseline_read_fj,
            row.baseline_write_fj,
            row.baseline_total_fj,
            row.adaptive_total_fj,
            row.saving_percent,
        );
    }

    let json = serde_json::to_string_pretty(&record)
        .map_err(|e| CmdError::Runtime(format!("cannot serialize {out}: {e}")))?;
    std::fs::write(out, json + "\n")
        .map_err(|e| CmdError::Runtime(format!("cannot write {out}: {e}")))?;
    eprintln!(
        "per-workload baseline: wrote {} row(s) to {out}",
        record.rows.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in cnt_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // Parse flags; everything else is an experiment id.
    let mut ids: Vec<&str> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut metrics_final = false;
    let mut warm_fork: Option<String> = None;
    let mut per_workload = false;
    let mut workloads_pattern: Option<String> = None;
    let mut trace_dirs: Vec<String> = Vec::new();
    let mut workloads_out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seq" => jobs = Some(1),
            "--warm-fork" => match cli::flag_value(&mut iter, "--warm-fork") {
                Ok(path) => warm_fork = Some(path.to_string()),
                Err(e) => return e.exit(),
            },
            "--trace" => match cli::flag_value(&mut iter, "--trace") {
                Ok(path) => traces.push(path.to_string()),
                Err(e) => return e.exit(),
            },
            "--jobs" | "-j" => match cli::positive_int_flag::<usize>(&mut iter, "--jobs") {
                Ok(n) => jobs = Some(n),
                Err(e) => return e.exit(),
            },
            "--metrics-out" => match cli::flag_value(&mut iter, "--metrics-out") {
                Ok(path) => metrics_out = Some(path.to_string()),
                Err(e) => return e.exit(),
            },
            "--metrics-every" => {
                match cli::positive_int_flag::<u64>(&mut iter, "--metrics-every") {
                    Ok(n) => metrics_every = Some(n),
                    Err(e) => return e.exit(),
                }
            }
            "--metrics-final" => metrics_final = true,
            "--per-workload-baseline" => per_workload = true,
            "--workloads" => match cli::flag_value(&mut iter, "--workloads") {
                Ok(pattern) => workloads_pattern = Some(pattern.to_string()),
                Err(e) => return e.exit(),
            },
            "--trace-dir" => match cli::flag_value(&mut iter, "--trace-dir") {
                Ok(dir) => trace_dirs.push(dir.to_string()),
                Err(e) => return e.exit(),
            },
            "--out" => match cli::flag_value(&mut iter, "--out") {
                Ok(path) => workloads_out = Some(path.to_string()),
                Err(e) => return e.exit(),
            },
            "all" => ids.extend_from_slice(cnt_bench::experiments::ALL),
            other => ids.push(other),
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        eprintln!("error: --metrics-every needs --metrics-out");
        return ExitCode::from(2);
    }
    if !per_workload
        && (workloads_pattern.is_some() || !trace_dirs.is_empty() || workloads_out.is_some())
    {
        eprintln!("error: --workloads/--trace-dir/--out need --per-workload-baseline");
        return ExitCode::from(2);
    }
    if per_workload {
        // The registry comparison is its own mode: it selects from the
        // workload registry, not the experiment-id list, and writes its
        // own record instead of the metrics stream.
        if !ids.is_empty() || !traces.is_empty() || warm_fork.is_some() {
            eprintln!(
                "error: --per-workload-baseline takes only --workloads/--trace-dir/--out \
                 (and --jobs/--seq)"
            );
            return ExitCode::from(2);
        }
        cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));
        return match run_per_workload_baseline(
            workloads_pattern.as_deref().unwrap_or("*"),
            &trace_dirs,
            workloads_out.as_deref().unwrap_or(DEFAULT_WORKLOADS_OUT),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => e.exit(),
        };
    }
    if let Some(ckpt_path) = warm_fork {
        // Warm-fork is its own mode: one checkpoint, one trace, a ΔT
        // sweep — no experiment ids and no metrics stream (the forks
        // share the checkpoint's mid-stream position, not its metrics).
        if !ids.is_empty() || metrics_out.is_some() || metrics_final {
            eprintln!("error: --warm-fork takes only --trace (and --jobs/--seq)");
            return ExitCode::from(2);
        }
        let [trace] = &traces[..] else {
            eprintln!("error: --warm-fork needs exactly one --trace FILE.ctr");
            return ExitCode::from(2);
        };
        cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));
        return match run_warm_fork(&ckpt_path, trace) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if ids.is_empty() && traces.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    // Validate every id up front so a typo late in the list fails fast,
    // before any compute, and every unknown id is reported at once.
    let unknown: Vec<&str> = ids
        .iter()
        .copied()
        .filter(|id| !cnt_bench::experiments::is_known(id))
        .collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("error: unknown experiment id `{id}`");
        }
        eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
        return ExitCode::from(2);
    }

    cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));
    if metrics_out.is_some() {
        let every = metrics_every.unwrap_or(DEFAULT_METRICS_EVERY);
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }

    for (id, report) in ids.iter().zip(cnt_bench::experiments::run_many(&ids)) {
        match report {
            Ok(report) => {
                println!("==== {id} ====");
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // External `.ctr` traces replay streamed (bounded memory,
    // chunk-parallel decode) — baseline vs adaptive, like the built-in
    // policy comparisons.
    for path in &traces {
        use cnt_bench::stream::run_dcache_stream;
        use cnt_cache::EncodingPolicy;
        let opts = cnt_trace::ReadOptions::default();
        let run = |policy| run_dcache_stream(policy, std::path::Path::new(path), opts);
        let (base, cnt) = match (
            run(EncodingPolicy::None),
            run(EncodingPolicy::adaptive_default()),
        ) {
            (Ok(base), Ok(cnt)) => (base, cnt),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("==== trace:{path} ====");
        println!(
            "accesses:  {} ({} chunks, {} skipped)",
            cnt.accesses, cnt.ingest.chunks_read, cnt.ingest.chunks_skipped
        );
        println!("baseline:  {:.1}", base.report.total());
        println!("CNT-Cache: {:.1}", cnt.report.total());
        println!("saving:    {:.2}%", cnt.report.saving_vs(&base.report));
        println!();
    }

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = match cnt_obs::to_jsonl(&snapshots) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("error: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    // Sorted by name so the export is byte-identical whatever order the
    // worker pool first touched each metric in.
    if metrics_final {
        let mut export = cnt_obs::registry().export();
        export.sort_by(|a, b| a.0.cmp(&b.0));
        println!("==== final metrics ====");
        for (name, value) in export {
            println!("{name} {value}");
        }
    }
    ExitCode::SUCCESS
}

//! Regenerates the CNT-Cache evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all              # run everything in order
//! experiments fig3 table1     # run specific experiments
//! experiments --jobs 4 all    # cap the worker pool at 4 threads
//! experiments --seq all       # force fully sequential execution
//! experiments --list           # list available ids
//! ```
//!
//! Experiments are computed in parallel on a shared thread pool but the
//! reports are always printed in submission order, so the output is
//! byte-identical whatever `--jobs` is set to.

use std::process::ExitCode;

fn usage() {
    eprintln!("usage: experiments [--list] [--jobs N | --seq] <id>... | all");
    eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in cnt_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // Parse flags; everything else is an experiment id.
    let mut ids: Vec<&str> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seq" => jobs = Some(1),
            "--jobs" | "-j" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                }
                jobs = Some(n);
            }
            "all" => ids.extend_from_slice(cnt_bench::experiments::ALL),
            other => ids.push(other),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    // Validate every id up front so a typo late in the list fails fast,
    // before any compute, and every unknown id is reported at once.
    let unknown: Vec<&str> = ids
        .iter()
        .copied()
        .filter(|id| !cnt_bench::experiments::is_known(id))
        .collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("error: unknown experiment id `{id}`");
        }
        eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
        return ExitCode::from(2);
    }

    cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));

    for (id, report) in ids.iter().zip(cnt_bench::experiments::run_many(&ids)) {
        match report {
            Ok(report) => {
                println!("==== {id} ====");
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Regenerates the CNT-Cache evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all          # run everything in order
//! experiments fig3 table1  # run specific experiments
//! experiments --list       # list available ids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <id>... | all");
        eprintln!("known ids: {}", cnt_bench::experiments::ALL.join(", "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in cnt_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        cnt_bench::experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in ids {
        match cnt_bench::experiments::run(id) {
            Ok(report) => {
                println!("==== {id} ====");
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Seeded direction-metadata fault-injection campaigns from the command
//! line.
//!
//! Usage:
//!
//! ```text
//! fault_campaign                      # default grid (faults 2,8,16, seed 0xFA17)
//! fault_campaign --faults 4,32 --seed 7 --dim 16
//! fault_campaign --jobs 4             # cap the worker pool
//! fault_campaign --seq                # force sequential execution
//! fault_campaign --metrics-out m.jsonl --metrics-every 5000
//! fault_campaign --metrics-final      # dump registry counters at exit
//! ```
//!
//! Campaign cells are computed on the shared worker pool but rendered in
//! grid order, and registry counters are additive and exported sorted by
//! name — so stdout and the metrics stream are byte-identical whatever
//! `--jobs` is set to.

use std::process::ExitCode;

use cnt_bench::campaign;
use cnt_bench::cli::{self, CmdError};
use cnt_workloads::kernels;

/// Default snapshot epoch length (accesses) when only `--metrics-out`
/// is given.
const DEFAULT_METRICS_EVERY: u64 = 10_000;

fn usage() {
    eprintln!(
        "usage: fault_campaign [--faults N,N,...] [--seed S] [--dim N] \
         [--jobs N | --seq] [--metrics-out FILE [--metrics-every N]] \
         [--metrics-final]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }

    let mut faults: Vec<usize> = vec![2, 8, 16];
    let mut seed = 0xFA17u64;
    let mut dim = 24usize;
    let mut jobs: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut metrics_final = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let parsed = match arg.as_str() {
            "--seq" => {
                jobs = Some(1);
                Ok(())
            }
            "--jobs" | "-j" => cli::positive_int_flag(&mut iter, "--jobs").map(|n| jobs = Some(n)),
            "--faults" => cli::flag_value(&mut iter, "--faults").and_then(|raw| {
                let parsed: Option<Vec<usize>> =
                    raw.split(',').map(|p| p.trim().parse().ok()).collect();
                match parsed.filter(|l| !l.is_empty()) {
                    Some(list) => {
                        faults = list;
                        Ok(())
                    }
                    None => Err(CmdError::Usage(String::from(
                        "--faults needs a comma-separated list of counts",
                    ))),
                }
            }),
            "--seed" => cli::flag_value(&mut iter, "--seed").and_then(|raw| {
                raw.strip_prefix("0x")
                    .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
                    .map(|s| seed = s)
                    .ok_or_else(|| {
                        CmdError::Usage(String::from("--seed needs an integer (decimal or 0x-hex)"))
                    })
            }),
            "--dim" => cli::positive_int_flag(&mut iter, "--dim").map(|n| dim = n),
            "--metrics-out" => {
                cli::flag_value(&mut iter, "--metrics-out").map(|p| metrics_out = Some(p.into()))
            }
            "--metrics-every" => cli::positive_int_flag(&mut iter, "--metrics-every")
                .map(|n| metrics_every = Some(n)),
            "--metrics-final" => {
                metrics_final = true;
                Ok(())
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
                return ExitCode::from(2);
            }
        };
        if let Err(e) = parsed {
            return e.exit();
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        eprintln!("error: --metrics-every needs --metrics-out");
        return ExitCode::from(2);
    }

    cnt_bench::pool::set_jobs(jobs.unwrap_or_else(cnt_bench::pool::default_jobs));
    if metrics_out.is_some() {
        let every = metrics_every.unwrap_or(DEFAULT_METRICS_EVERY);
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }

    let w = kernels::matmul(dim, 1);
    let grid = campaign::default_grid(&faults, seed);
    let outcomes = {
        let _scope = cnt_obs::scoped("fault_campaign");
        campaign::sweep(&w.trace, &grid)
    };
    println!(
        "Fault-injection campaign: matmul {dim}x{dim}, seed {seed:#x}, \
         {} cells.\n",
        grid.len()
    );
    print!("{}", campaign::render(&outcomes));

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = match cnt_obs::to_jsonl(&snapshots) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("error: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    if metrics_final {
        let mut export = cnt_obs::registry().export();
        export.sort_by(|a, b| a.0.cmp(&b.0));
        println!("\n==== final metrics ====");
        for (name, value) in export {
            println!("{name} {value}");
        }
    }
    ExitCode::SUCCESS
}

//! Replays the full D-Cache suite sequentially and in parallel and
//! records the throughput comparison in `BENCH_parallel.json`.
//!
//! Usage:
//!
//! ```text
//! bench_throughput [--jobs N] [--out PATH] [--trace FILE.ctr]
//!                  [--workloads GLOB] [--trace-dir DIR]...
//!                  [--metrics-out FILE [--metrics-every N]]
//! bench_throughput --stages [--iters N] [--warmup N] [--out PATH]
//!                  [--baseline FILE] [--gate FILE]
//! bench_throughput --ws [--jobs N] [--skew K] [--out PATH]
//! ```
//!
//! Both passes run the identical (benchmark x policy) replay matrix —
//! baseline and adaptive encoding over every suite workload — so the
//! speedup column isolates the thread-pool gain. The recorded numbers
//! are whatever this machine produced: on a single-core runner the
//! honest speedup is ~1.0x, and `cores` in the JSON says so.
//!
//! With `--trace FILE.ctr` the suite matrix is replaced by streamed
//! replays of the external trace (baseline and adaptive), so the
//! speedup column instead isolates the chunk-parallel decode gain of
//! the `cnt-trace` ingestion pipeline.
//!
//! With `--workloads GLOB` (and optionally `--trace-dir DIR` to pull
//! imported `.ctr` captures into the namespace) the matrix is built
//! from the workload registry instead of the fixed suite, so imported
//! real-application traces replay through the identical measurement
//! path as the synthetic kernels.
//!
//! With `--stages` the end-to-end matrix is replaced by isolated
//! single-thread timings of the replay hot path — the `popcount`,
//! `decode`, and `decision` kernels plus the batched end-to-end
//! `replay` loop — each run `--warmup` untimed and `--iters` timed
//! iterations and summarised as mean/stddev/min in `BENCH_simd.json`.
//! `--gate FILE` additionally compares the fresh means against a
//! committed record and exits with code 3 when any stage drops more
//! than 20% below its committed mean (CI treats 3 as a warning: shared
//! runners are noisy; byte-identity breakage elsewhere stays fatal).
//!
//! With `--ws` the suite matrix is skew-injected — the first workload's
//! replay is repeated `--skew` times inside its cell, a deliberate 10×
//! straggler — and replayed once under the static scheduler and once
//! under the work-stealing scheduler at the same `--jobs` cap. Both
//! passes must produce identical energy reports (hard assertion); the
//! wall-clock comparison goes to `BENCH_ws.json`. On a machine with ≥4
//! cores at `--jobs ≥4` a work-stealing speedup below 1.5× exits with
//! code 3, the same soft-gate convention as `--stages --gate`.

use std::process::ExitCode;
use std::time::Instant;

use cnt_bench::cli;
use cnt_bench::pool::SchedulerKind;
use cnt_bench::runner::{run_dcache, run_dcache_batch, run_dcache_matrix};
use cnt_bench::stream::run_dcache_stream;
use cnt_bench::{
    pool, BenchRecord, IterStats, PassRecord, SimdBenchRecord, StageRecord, WsBenchRecord,
};
use cnt_cache::{EncodingPolicy, EnergyReport};
use cnt_encoding::popcount::popcount_word_partitions;
use cnt_encoding::{DirectionBits, DirectionPredictor, PredictorConfig, WindowSummary};
use cnt_energy::BitEnergies;
use cnt_sim::trace::AccessBatch;
use cnt_trace::format::{decode_payload_into, encode_access};
use cnt_trace::ReadOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = pool::default_jobs();
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut stages = false;
    let mut ws = false;
    let mut skew = 10u32;
    let mut iters = 5u32;
    let mut warmup = 2u32;
    let mut baseline_path = String::from("BENCH_parallel.json");
    let mut gate_path: Option<String> = None;
    let mut workloads_pattern: Option<String> = None;
    let mut trace_dirs: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let parsed = match arg.as_str() {
            "--trace" => cli::flag_value(&mut iter, "--trace").map(|p| trace_path = Some(p.into())),
            "--jobs" | "-j" => cli::positive_int_flag(&mut iter, "--jobs").map(|n| jobs = n),
            "--out" => cli::flag_value(&mut iter, "--out").map(|p| out_path = Some(p.into())),
            "--stages" => {
                stages = true;
                Ok(())
            }
            "--ws" => {
                ws = true;
                Ok(())
            }
            "--skew" => cli::positive_int_flag(&mut iter, "--skew").map(|n| skew = n),
            "--iters" => cli::positive_int_flag(&mut iter, "--iters").map(|n| iters = n),
            "--warmup" => cli::int_flag(&mut iter, "--warmup").map(|n| warmup = n),
            "--baseline" => {
                cli::flag_value(&mut iter, "--baseline").map(|p| baseline_path = p.into())
            }
            "--gate" => cli::flag_value(&mut iter, "--gate").map(|p| gate_path = Some(p.into())),
            "--workloads" => cli::flag_value(&mut iter, "--workloads")
                .map(|p| workloads_pattern = Some(p.into())),
            "--trace-dir" => {
                cli::flag_value(&mut iter, "--trace-dir").map(|d| trace_dirs.push(d.into()))
            }
            "--metrics-out" => {
                cli::flag_value(&mut iter, "--metrics-out").map(|p| metrics_out = Some(p.into()))
            }
            "--metrics-every" => cli::positive_int_flag(&mut iter, "--metrics-every")
                .map(|n| metrics_every = Some(n)),
            other => {
                eprintln!(
                    "usage: bench_throughput [--jobs N] [--out PATH] [--trace FILE.ctr] \
                     [--workloads GLOB] [--trace-dir DIR]... \
                     [--metrics-out FILE [--metrics-every N]]\n       \
                     bench_throughput --stages [--iters N] [--warmup N] [--out PATH] \
                     [--baseline FILE] [--gate FILE]\n       \
                     bench_throughput --ws [--jobs N] [--skew K] [--out PATH]"
                );
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = parsed {
            return e.exit();
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        eprintln!("error: --metrics-every needs --metrics-out");
        return ExitCode::from(2);
    }
    let registry_flags = workloads_pattern.is_some() || !trace_dirs.is_empty();
    if registry_flags && trace_path.is_some() {
        eprintln!("error: --workloads/--trace-dir select from the registry; drop --trace");
        return ExitCode::from(2);
    }
    if stages {
        if trace_path.is_some() || metrics_out.is_some() || ws || registry_flags {
            eprintln!(
                "error: --stages cannot be combined with --trace, --metrics-out, --ws, \
                 --workloads, or --trace-dir"
            );
            return ExitCode::from(2);
        }
        let out = out_path.unwrap_or_else(|| String::from("BENCH_simd.json"));
        return run_stage_suite(&out, iters, warmup, &baseline_path, gate_path.as_deref());
    }
    if gate_path.is_some() {
        eprintln!("error: --gate only applies to --stages runs");
        return ExitCode::from(2);
    }
    if ws {
        if trace_path.is_some() || metrics_out.is_some() || registry_flags {
            eprintln!(
                "error: --ws cannot be combined with --trace, --metrics-out, --workloads, \
                 or --trace-dir"
            );
            return ExitCode::from(2);
        }
        let out = out_path.unwrap_or_else(|| String::from("BENCH_ws.json"));
        return run_ws_suite(&out, jobs, skew);
    }
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_parallel.json"));
    if metrics_out.is_some() {
        let every = metrics_every.unwrap_or(10_000);
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }

    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    // One pass = the full replay matrix; returns accesses replayed.
    let (run_pass, workload_count): (Box<dyn Fn() -> u64>, usize) = match &trace_path {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            // Surface an unreadable or malformed trace before any
            // measurement, not halfway through the warmup.
            let header_check = std::fs::File::open(&path)
                .map_err(cnt_trace::TraceError::from)
                .and_then(|f| {
                    cnt_trace::StreamReader::new(std::io::BufReader::new(f), ReadOptions::default())
                        .map(|_| ())
                });
            if let Err(e) = header_check {
                eprintln!("error: `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
            let pass = move || {
                policies
                    .iter()
                    .map(
                        |&policy| match run_dcache_stream(policy, &path, ReadOptions::default()) {
                            Ok(outcome) => outcome.accesses,
                            Err(e) => {
                                eprintln!("error: `{}`: {e}", path.display());
                                std::process::exit(1);
                            }
                        },
                    )
                    .sum()
            };
            (Box::new(pass), 1)
        }
        None => {
            // The default matrix is the classic suite; --workloads /
            // --trace-dir swap in a registry selection so imported
            // captures replay through the identical measurement path.
            let workloads = if registry_flags {
                let mut registry = cnt_workloads::WorkloadRegistry::builtin();
                for dir in &trace_dirs {
                    match registry.add_trace_dir(std::path::Path::new(dir)) {
                        Ok(added) => eprintln!("registry: {added} imported workload(s) from {dir}"),
                        Err(e) => {
                            eprintln!("error: --trace-dir {dir}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let pattern = workloads_pattern.as_deref().unwrap_or("*");
                let selected = match registry.select(pattern) {
                    Ok(selected) => selected,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                };
                let mut loaded = Vec::with_capacity(selected.len());
                for entry in selected {
                    match entry.load() {
                        Ok(workload) => loaded.push(workload),
                        Err(e) => {
                            eprintln!("error: workload `{}`: {e}", entry.id);
                            return ExitCode::FAILURE;
                        }
                    }
                }
                loaded
            } else {
                cnt_workloads::suite()
            };
            let count = workloads.len();
            let pass = move || {
                let matrix = run_dcache_matrix(&workloads, &policies);
                assert_eq!(matrix.len(), workloads.len());
                // Each matrix cell replays the full trace once.
                workloads
                    .iter()
                    .map(|w| w.trace.len() as u64 * policies.len() as u64)
                    .sum()
            };
            (Box::new(pass), count)
        }
    };

    let measure = |label: &str, jobs: usize| -> (PassRecord, u64) {
        pool::set_jobs(jobs);
        // Distinct scope labels per pass: the same matrix replays four
        // times (warmup + measured, sequential + parallel), so snapshot
        // ids must not collide across passes.
        let _pass = cnt_obs::scoped(label);
        {
            // Full warm-up replay so neither measured pass pays
            // first-touch costs the other would not (the first pass
            // would otherwise warm the allocator and page cache for the
            // second).
            let _warmup = cnt_obs::scoped("warmup");
            let _ = run_pass();
        }
        let _measured = cnt_obs::scoped("measured");
        let start = Instant::now();
        let accesses = run_pass();
        let wall = start.elapsed().as_secs_f64();
        let record = PassRecord {
            jobs,
            wall_seconds: wall,
            // Guard the degenerate zero-wall case: the record must stay
            // serializable, and serde_json rejects non-finite floats.
            accesses_per_second: if wall > 0.0 {
                accesses as f64 / wall
            } else {
                0.0
            },
            iters: 1,
            warmup: 1,
        };
        (record, accesses)
    };

    let what = trace_path.as_deref().unwrap_or("suite");
    eprintln!("replaying {what} sequentially (--jobs 1)...");
    let (seq, seq_accesses) = measure("seq", 1);
    eprintln!(
        "  {:.3} s  ({:.0} accesses/s)",
        seq.wall_seconds, seq.accesses_per_second
    );
    eprintln!("replaying {what} in parallel (--jobs {jobs})...");
    let (par, par_accesses) = measure("par", jobs);
    eprintln!(
        "  {:.3} s  ({:.0} accesses/s)",
        par.wall_seconds, par.accesses_per_second
    );
    assert_eq!(
        seq_accesses, par_accesses,
        "both passes replay the identical matrix"
    );

    let cores = pool::default_jobs();
    let record = BenchRecord {
        // The pool's own view of the hardware, sampled at measurement
        // time — the one number `metrics_lint` trusts when judging
        // whether a `jobs > cores` speedup claim is reliable.
        cores,
        workloads: workload_count,
        policies_per_workload: policies.len(),
        accesses_per_pass: seq_accesses,
        sequential: seq,
        parallel: par,
        skip_note: scaling_skip_note(cores),
    };
    println!(
        "speedup: {:.2}x on {} core(s)",
        record.speedup(),
        record.cores
    );

    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = match cnt_obs::to_jsonl(&snapshots) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("error: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    ExitCode::SUCCESS
}

/// The explicit skip record a scaling measurement carries when the box
/// cannot support the claim (fewer than 4 hardware threads): the
/// numbers are still real wall-clock, but any speedup is noise, and the
/// committed JSON must say so rather than silently look like a
/// regression.
fn scaling_skip_note(cores: usize) -> Option<String> {
    (cores < 4).then(|| {
        format!(
            "parallel-scaling measurement skipped: {cores} core(s) at measurement time, \
             a >=4-core box is required for a meaningful speedup claim"
        )
    })
}

/// Gate tolerance: a fresh stage mean more than this fraction below the
/// committed mean exits with [`GATE_EXIT`].
const GATE_TOLERANCE: f64 = 0.20;

/// Exit code for a perf-gate violation — distinct from hard failures so
/// CI can downgrade it to a warning on noisy shared runners.
const GATE_EXIT: u8 = 3;

/// Work-stealing soft-gate floor: on ≥4 real cores at `--jobs ≥4`, the
/// skew-injected matrix must run at least this much faster under the
/// work-stealing engine than under the static engine.
const WS_GATE_SPEEDUP: f64 = 1.5;

/// The `--ws` mode: the suite matrix with one deliberately skewed
/// workload, replayed under both scheduling engines.
///
/// The skewed cell replays its trace `skew` times, so under the static
/// engine the whole pass degenerates to roughly the straggler's serial
/// time (its nested fan-out finds the budget exhausted and stays
/// sequential, while the finished workers' slots sit idle until the
/// outer join). The work-stealing engine releases budget incrementally
/// and recruits mid-flight, so the straggler's inner replays spread over
/// the freed threads.
fn run_ws_suite(out_path: &str, jobs: usize, skew: u32) -> ExitCode {
    let cores = pool::default_jobs();
    let workloads = cnt_workloads::suite();
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    // (workload index, replay repetitions): workload 0 is the straggler.
    let cells: Vec<(usize, u32)> = (0..workloads.len())
        .map(|w| (w, if w == 0 { skew } else { 1 }))
        .collect();
    let accesses_per_pass: u64 = cells
        .iter()
        .map(|&(w, reps)| workloads[w].trace.len() as u64 * policies.len() as u64 * u64::from(reps))
        .sum();

    // One pass = outer fan-out over cells, nested fan-out over each
    // cell's (policy × repetition) replays. Reports come back in
    // deterministic (cell, policy, repetition) order for the
    // scheduler-identity assertion below.
    let run_pass = || -> Vec<EnergyReport> {
        pool::par_map(&cells, |&(w, reps)| {
            let replays: Vec<usize> = (0..policies.len() * reps as usize).collect();
            pool::par_map(&replays, |&r| {
                run_dcache(policies[r % policies.len()], &workloads[w].trace)
            })
        })
        .into_iter()
        .flatten()
        .collect()
    };

    let measure = |label: &str, kind: SchedulerKind| -> (PassRecord, Vec<EnergyReport>) {
        pool::set_scheduler(kind);
        pool::set_jobs(jobs);
        let _pass = cnt_obs::scoped(label);
        {
            let _warmup = cnt_obs::scoped("warmup");
            let _ = run_pass();
        }
        let _measured = cnt_obs::scoped("measured");
        let start = Instant::now();
        let reports = run_pass();
        let wall = start.elapsed().as_secs_f64();
        let record = PassRecord {
            jobs,
            wall_seconds: wall,
            accesses_per_second: if wall > 0.0 {
                accesses_per_pass as f64 / wall
            } else {
                0.0
            },
            iters: 1,
            warmup: 1,
        };
        (record, reports)
    };

    eprintln!(
        "skew-injected matrix: workload `{}` x{skew}, {} workloads x {} policies, --jobs {jobs}",
        workloads[0].name,
        workloads.len(),
        policies.len()
    );
    eprintln!("replaying under the static scheduler...");
    let (static_pass, static_reports) = measure("ws-static", SchedulerKind::Static);
    eprintln!("  {:.3} s", static_pass.wall_seconds);
    eprintln!("replaying under the work-stealing scheduler...");
    let (ws_pass, ws_reports) = measure("ws-steal", SchedulerKind::WorkStealing);
    eprintln!("  {:.3} s", ws_pass.wall_seconds);
    pool::set_scheduler(SchedulerKind::WorkStealing);
    assert_eq!(
        static_reports, ws_reports,
        "both schedulers must produce identical energy reports"
    );

    let record = WsBenchRecord {
        cores,
        jobs,
        skew,
        workloads: workloads.len(),
        policies_per_workload: policies.len(),
        accesses_per_pass,
        static_pass,
        ws_pass,
        skip_note: scaling_skip_note(cores),
    };
    println!(
        "work-stealing speedup over static: {:.2}x at --jobs {} on {} core(s)",
        record.speedup(),
        record.jobs,
        record.cores
    );
    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    if let Err(e) = std::fs::write(out_path, json + "\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if cores < 4 || jobs < 4 {
        println!(
            "ws-gate: skipped ({cores} core(s), --jobs {jobs}; the gate needs at least 4 of both)"
        );
    } else if record.speedup() < WS_GATE_SPEEDUP {
        eprintln!(
            "ws-gate: {:.2}x is below the {WS_GATE_SPEEDUP}x floor on {cores} cores",
            record.speedup()
        );
        return ExitCode::from(GATE_EXIT);
    } else {
        println!(
            "ws-gate: {:.2}x meets the {WS_GATE_SPEEDUP}x floor",
            record.speedup()
        );
    }
    ExitCode::SUCCESS
}

/// `splitmix64` step: cheap, deterministic, well-mixed test data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one stage body `warmup` untimed plus `iters` timed iterations
/// and summarises throughput. The body returns a checksum that must be
/// identical every iteration — a changing checksum means the stage is
/// not deterministic and the timing compares different work.
fn time_stage(
    name: &str,
    unit: &str,
    items_per_iter: u64,
    iters: u32,
    warmup: u32,
    baseline: f64,
    mut body: impl FnMut() -> u64,
) -> StageRecord {
    let mut checksum: Option<u64> = None;
    let mut check = |c: u64| match checksum {
        None => checksum = Some(c),
        Some(prev) => assert_eq!(prev, c, "stage `{name}` must be deterministic"),
    };
    for _ in 0..warmup {
        check(std::hint::black_box(body()));
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        let c = std::hint::black_box(body());
        let wall = start.elapsed().as_secs_f64();
        check(c);
        samples.push(if wall > 0.0 {
            items_per_iter as f64 / wall
        } else {
            0.0
        });
    }
    let per_second = IterStats::from_samples(&samples);
    let speedup = if baseline > 0.0 {
        per_second.mean / baseline
    } else {
        0.0
    };
    eprintln!(
        "stage {name:<8} {:>12.0} {unit}/s mean  (stddev {:.0}, min {:.0})  {:.1}x baseline",
        per_second.mean, per_second.stddev, per_second.min, speedup
    );
    StageRecord {
        stage: name.to_string(),
        items_per_iter,
        unit: unit.to_string(),
        iters,
        warmup,
        per_second,
        speedup_vs_baseline: speedup,
    }
}

/// The `--stages` mode: isolated single-thread hot-path timings.
fn run_stage_suite(
    out_path: &str,
    iters: u32,
    warmup: u32,
    baseline_path: &str,
    gate_path: Option<&str>,
) -> ExitCode {
    // All stages are single-thread measurements by definition.
    pool::set_jobs(1);
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => match serde_json::from_str::<BenchRecord>(&text) {
            Ok(record) => record.sequential.accesses_per_second,
            Err(e) => {
                eprintln!(
                    "warning: cannot parse baseline `{baseline_path}` ({e}); \
                     speedup_vs_baseline columns will read 0.0"
                );
                0.0
            }
        },
        Err(e) => {
            eprintln!(
                "warning: cannot read baseline `{baseline_path}` ({e}); \
                 speedup_vs_baseline columns will read 0.0"
            );
            0.0
        }
    };
    eprintln!("baseline: {baseline:.0} accesses/s end-to-end sequential ({baseline_path})");
    eprintln!("timing each stage: {warmup} warmup + {iters} measured iterations");

    let workloads = cnt_workloads::suite();
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    let mut records = Vec::new();

    // Stage 1 — popcount: the per-partition stored-weight kernel over
    // deterministic 512-bit lines (8 partitions of one word each, the
    // paper's D-Cache shape), exactly the split the predictor asks for.
    {
        const LINES: usize = 1 << 16;
        const WORDS_PER_LINE: usize = 8;
        let mut seed = 0xC17_CAC4Eu64;
        let words: Vec<u64> = (0..LINES * WORDS_PER_LINE)
            .map(|_| splitmix64(&mut seed))
            .collect();
        let mut counts = [0u32; WORDS_PER_LINE];
        records.push(time_stage(
            "popcount",
            "lines",
            LINES as u64,
            iters,
            warmup,
            baseline,
            || {
                let mut sum = 0u64;
                for line in words.chunks_exact(WORDS_PER_LINE) {
                    popcount_word_partitions(line, 1, &mut counts);
                    sum += counts.iter().map(|&c| u64::from(c)).sum::<u64>();
                }
                sum
            },
        ));
    }

    // Stage 2 — decode: `.ctr` chunk payloads for the whole suite,
    // decoded into one reused struct-of-arrays batch per chunk.
    {
        const CHUNK_ACCESSES: usize = 4096;
        let mut payloads: Vec<(Vec<u8>, u32)> = Vec::new();
        let mut total_records = 0u64;
        for workload in &workloads {
            for chunk in workload
                .trace
                .iter()
                .collect::<Vec<_>>()
                .chunks(CHUNK_ACCESSES)
            {
                let mut payload = Vec::new();
                for access in chunk {
                    encode_access(access, &mut payload);
                }
                payloads.push((payload, chunk.len() as u32));
                total_records += chunk.len() as u64;
            }
        }
        let mut batch = AccessBatch::with_capacity(CHUNK_ACCESSES);
        records.push(time_stage(
            "decode",
            "records",
            total_records,
            iters,
            warmup,
            baseline,
            || {
                let mut sum = 0u64;
                for (payload, count) in &payloads {
                    decode_payload_into(payload, *count, 0, &mut batch)
                        .expect("suite payloads are well-formed");
                    sum = sum
                        .wrapping_add(batch.len() as u64)
                        .wrapping_add(batch.addrs().last().copied().unwrap_or(0));
                }
                sum
            },
        ));
    }

    // Stage 3 — decision: Algorithm 1 direction decisions (batched
    // stored popcount + threshold-table consult) over deterministic
    // lines, directions, and window summaries.
    {
        const LINES: usize = 1 << 14;
        const WORDS_PER_LINE: usize = 8;
        let config = PredictorConfig::paper_default();
        let predictor = DirectionPredictor::new(&BitEnergies::cnfet_default(), config)
            .expect("paper-default predictor is valid");
        let mut seed = 0xD1C1_510Au64;
        let lines: Vec<u64> = (0..LINES * WORDS_PER_LINE)
            .map(|_| splitmix64(&mut seed))
            .collect();
        let dirs: Vec<DirectionBits> = (0..LINES)
            .map(|_| DirectionBits::from_mask(splitmix64(&mut seed) & 0xFF, config.partitions))
            .collect();
        records.push(time_stage(
            "decision",
            "decisions",
            LINES as u64,
            iters,
            warmup,
            baseline,
            || {
                let mut sum = 0u64;
                for (i, line) in lines.chunks_exact(WORDS_PER_LINE).enumerate() {
                    let summary = WindowSummary {
                        wr_num: (i % (config.window as usize + 1)) as u32,
                    };
                    let decision = predictor.decide(summary, line, &dirs[i]);
                    sum = sum.wrapping_add(decision.flips).wrapping_add(1);
                }
                sum
            },
        ));
    }

    // Stage 4 — replay: the honest end-to-end number. The full
    // (workload x policy) matrix through the batched columnar loop,
    // single thread; compare against `baseline` to see what the batch
    // path buys end-to-end (metering dominates, so expect ~1x here —
    // the kernel stages above are where the 5x+ lives).
    {
        let batches: Vec<AccessBatch> = workloads
            .iter()
            .map(|w| AccessBatch::from_trace(&w.trace))
            .collect();
        let accesses: u64 =
            batches.iter().map(|b| b.len() as u64).sum::<u64>() * policies.len() as u64;
        records.push(time_stage(
            "replay",
            "accesses",
            accesses,
            iters,
            warmup,
            baseline,
            || {
                let mut sum = 0u64;
                for batch in &batches {
                    for &policy in &policies {
                        let report = run_dcache_batch(policy, batch);
                        sum = sum.wrapping_add(report.stats.accesses());
                    }
                }
                sum
            },
        ));
    }

    let record = SimdBenchRecord {
        cores: pool::default_jobs(),
        baseline_accesses_per_second: baseline,
        stages: records,
    };
    println!(
        "best stage speedup: {:.1}x over the end-to-end baseline",
        record.best_speedup()
    );
    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    if let Err(e) = std::fs::write(out_path, json + "\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = gate_path {
        let committed: SimdBenchRecord = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
        {
            Ok(committed) => committed,
            Err(e) => {
                eprintln!("error: cannot load gate record `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations = committed.regressions_in(&record, GATE_TOLERANCE);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("perf-gate: {v}");
            }
            return ExitCode::from(GATE_EXIT);
        }
        println!(
            "perf-gate: all {} committed stages within {:.0}% of their means",
            committed.stages.len(),
            GATE_TOLERANCE * 100.0
        );
    }
    ExitCode::SUCCESS
}

//! Replays the full D-Cache suite sequentially and in parallel and
//! records the throughput comparison in `BENCH_parallel.json`.
//!
//! Usage:
//!
//! ```text
//! bench_throughput [--jobs N] [--out PATH] [--trace FILE.ctr]
//!                  [--metrics-out FILE [--metrics-every N]]
//! ```
//!
//! Both passes run the identical (benchmark x policy) replay matrix —
//! baseline and adaptive encoding over every suite workload — so the
//! speedup column isolates the thread-pool gain. The recorded numbers
//! are whatever this machine produced: on a single-core runner the
//! honest speedup is ~1.0x, and `cores` in the JSON says so.
//!
//! With `--trace FILE.ctr` the suite matrix is replaced by streamed
//! replays of the external trace (baseline and adaptive), so the
//! speedup column instead isolates the chunk-parallel decode gain of
//! the `cnt-trace` ingestion pipeline.

use std::process::ExitCode;
use std::time::Instant;

use cnt_bench::runner::run_dcache_matrix;
use cnt_bench::stream::run_dcache_stream;
use cnt_bench::{pool, BenchRecord, PassRecord};
use cnt_cache::EncodingPolicy;
use cnt_trace::ReadOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = pool::default_jobs();
    let mut out_path = String::from("BENCH_parallel.json");
    let mut trace_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => {
                let Some(p) = iter.next() else {
                    eprintln!("error: --trace needs a .ctr path");
                    return ExitCode::from(2);
                };
                trace_path = Some(p.clone());
            }
            "--jobs" | "-j" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("error: --jobs needs a positive integer");
                    return ExitCode::from(2);
                }
                jobs = n;
            }
            "--out" => {
                let Some(p) = iter.next() else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out_path = p.clone();
            }
            "--metrics-out" => {
                let Some(p) = iter.next() else {
                    eprintln!("error: --metrics-out needs a path");
                    return ExitCode::from(2);
                };
                metrics_out = Some(p.clone());
            }
            "--metrics-every" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("error: --metrics-every needs a positive integer");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("error: --metrics-every needs a positive integer");
                    return ExitCode::from(2);
                }
                metrics_every = Some(n);
            }
            other => {
                eprintln!(
                    "usage: bench_throughput [--jobs N] [--out PATH] [--trace FILE.ctr] \
                     [--metrics-out FILE [--metrics-every N]]"
                );
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        eprintln!("error: --metrics-every needs --metrics-out");
        return ExitCode::from(2);
    }
    if metrics_out.is_some() {
        let every = metrics_every.unwrap_or(10_000);
        cnt_obs::install(every);
        eprintln!("metrics: snapshot every {every} accesses");
    }

    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    // One pass = the full replay matrix; returns accesses replayed.
    let (run_pass, workload_count): (Box<dyn Fn() -> u64>, usize) = match &trace_path {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            // Surface an unreadable or malformed trace before any
            // measurement, not halfway through the warmup.
            let header_check = std::fs::File::open(&path)
                .map_err(cnt_trace::TraceError::from)
                .and_then(|f| {
                    cnt_trace::StreamReader::new(std::io::BufReader::new(f), ReadOptions::default())
                        .map(|_| ())
                });
            if let Err(e) = header_check {
                eprintln!("error: `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
            let pass = move || {
                policies
                    .iter()
                    .map(
                        |&policy| match run_dcache_stream(policy, &path, ReadOptions::default()) {
                            Ok(outcome) => outcome.accesses,
                            Err(e) => {
                                eprintln!("error: `{}`: {e}", path.display());
                                std::process::exit(1);
                            }
                        },
                    )
                    .sum()
            };
            (Box::new(pass), 1)
        }
        None => {
            let workloads = cnt_workloads::suite();
            let count = workloads.len();
            let pass = move || {
                let matrix = run_dcache_matrix(&workloads, &policies);
                assert_eq!(matrix.len(), workloads.len());
                // Each matrix cell replays the full trace once.
                workloads
                    .iter()
                    .map(|w| w.trace.len() as u64 * policies.len() as u64)
                    .sum()
            };
            (Box::new(pass), count)
        }
    };

    let measure = |label: &str, jobs: usize| -> (PassRecord, u64) {
        pool::set_jobs(jobs);
        // Distinct scope labels per pass: the same matrix replays four
        // times (warmup + measured, sequential + parallel), so snapshot
        // ids must not collide across passes.
        let _pass = cnt_obs::scoped(label);
        {
            // Full warm-up replay so neither measured pass pays
            // first-touch costs the other would not (the first pass
            // would otherwise warm the allocator and page cache for the
            // second).
            let _warmup = cnt_obs::scoped("warmup");
            let _ = run_pass();
        }
        let _measured = cnt_obs::scoped("measured");
        let start = Instant::now();
        let accesses = run_pass();
        let wall = start.elapsed().as_secs_f64();
        let record = PassRecord {
            jobs,
            wall_seconds: wall,
            // Guard the degenerate zero-wall case: the record must stay
            // serializable, and serde_json rejects non-finite floats.
            accesses_per_second: if wall > 0.0 {
                accesses as f64 / wall
            } else {
                0.0
            },
        };
        (record, accesses)
    };

    let what = trace_path.as_deref().unwrap_or("suite");
    eprintln!("replaying {what} sequentially (--jobs 1)...");
    let (seq, seq_accesses) = measure("seq", 1);
    eprintln!(
        "  {:.3} s  ({:.0} accesses/s)",
        seq.wall_seconds, seq.accesses_per_second
    );
    eprintln!("replaying {what} in parallel (--jobs {jobs})...");
    let (par, par_accesses) = measure("par", jobs);
    eprintln!(
        "  {:.3} s  ({:.0} accesses/s)",
        par.wall_seconds, par.accesses_per_second
    );
    assert_eq!(
        seq_accesses, par_accesses,
        "both passes replay the identical matrix"
    );

    let record = BenchRecord {
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        workloads: workload_count,
        policies_per_workload: policies.len(),
        accesses_per_pass: seq_accesses,
        sequential: seq,
        parallel: par,
    };
    println!(
        "speedup: {:.2}x on {} core(s)",
        record.speedup(),
        record.cores
    );

    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = metrics_out {
        let snapshots = cnt_obs::drain();
        let jsonl = match cnt_obs::to_jsonl(&snapshots) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("error: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: wrote {} snapshots to {path}", snapshots.len());
    }
    ExitCode::SUCCESS
}

//! Validates benchmark artefacts: JSONL metrics streams produced by
//! `--metrics-out` and the committed `BENCH_*.json` records.
//!
//! Usage:
//!
//! ```text
//! metrics_lint <metrics.jsonl | BENCH_record.json> [...]
//! ```
//!
//! Files ending in `.json` are linted as single benchmark records —
//! either the sequential-vs-parallel `BenchRecord` shape (old records
//! without the `iters`/`warmup` iteration fields still parse) or the
//! `--stages` `SimdBenchRecord` shape, with every throughput figure
//! required to be finite and non-negative. Anything else is linted as a
//! snapshot stream: every line must parse as a `cnt_obs::Snapshot` with
//! at least one cache level, and within each experiment stream the
//! epochs must count up from zero with non-decreasing access totals.
//! Exits non-zero on the first violation, naming the offending file.
//! CI runs this over the metrics smoke stream and the committed bench
//! records.

use std::process::ExitCode;

use cnt_bench::{BenchRecord, SimdBenchRecord, StageRecord};

fn check_rate(what: &str, rate: f64) -> Result<(), String> {
    if !rate.is_finite() || rate < 0.0 {
        return Err(format!(
            "{what}: throughput {rate} is not a finite non-negative number"
        ));
    }
    Ok(())
}

fn lint_stage(stage: &StageRecord) -> Result<(), String> {
    let name = &stage.stage;
    if stage.iters == 0 {
        return Err(format!("stage `{name}`: zero measured iterations"));
    }
    check_rate(&format!("stage `{name}` mean"), stage.per_second.mean)?;
    check_rate(&format!("stage `{name}` stddev"), stage.per_second.stddev)?;
    check_rate(&format!("stage `{name}` min"), stage.per_second.min)?;
    if stage.per_second.min > stage.per_second.mean {
        return Err(format!(
            "stage `{name}`: min {} exceeds mean {}",
            stage.per_second.min, stage.per_second.mean
        ));
    }
    Ok(())
}

/// Lints one `BENCH_*.json` record of either shape.
fn lint_bench_record(text: &str) -> Result<String, String> {
    if let Ok(record) = serde_json::from_str::<SimdBenchRecord>(text) {
        if record.stages.is_empty() {
            return Err("stage record with no stages".into());
        }
        for stage in &record.stages {
            lint_stage(stage)?;
        }
        return Ok(format!(
            "ok — {} stages, best {:.1}x over baseline",
            record.stages.len(),
            record.best_speedup()
        ));
    }
    match serde_json::from_str::<BenchRecord>(text) {
        Ok(record) => {
            check_rate("sequential pass", record.sequential.accesses_per_second)?;
            check_rate("parallel pass", record.parallel.accesses_per_second)?;
            if record.sequential.jobs != 1 {
                return Err(format!(
                    "sequential pass ran with --jobs {}",
                    record.sequential.jobs
                ));
            }
            Ok(format!(
                "ok — {} accesses/pass, {:.2}x speedup on {} core(s)",
                record.accesses_per_pass,
                record.speedup(),
                record.cores
            ))
        }
        Err(e) => Err(format!("not a recognised bench record: {e}")),
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: metrics_lint <metrics.jsonl | BENCH_record.json>...");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        if text.is_empty() {
            eprintln!("{path}: empty metrics stream");
            failed = true;
            continue;
        }
        if path.ends_with(".json") {
            match lint_bench_record(&text) {
                Ok(summary) => println!("{path}: {summary}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        match cnt_obs::validate_jsonl(&text) {
            Ok(summary) => println!(
                "{path}: ok — {} snapshots across {} experiments",
                summary.snapshots, summary.experiments
            ),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

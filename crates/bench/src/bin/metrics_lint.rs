//! Validates a JSONL metrics stream produced by `--metrics-out`.
//!
//! Usage:
//!
//! ```text
//! metrics_lint metrics.jsonl [...]
//! ```
//!
//! Every line must parse as a `cnt_obs::Snapshot` with at least one
//! cache level, and within each experiment stream the epochs must count
//! up from zero with non-decreasing access totals. Exits non-zero on the
//! first violation, naming the offending line. CI runs this over the
//! stream emitted by the metrics smoke job.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: metrics_lint <metrics.jsonl>...");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        if text.is_empty() {
            eprintln!("{path}: empty metrics stream");
            failed = true;
            continue;
        }
        match cnt_obs::validate_jsonl(&text) {
            Ok(summary) => println!(
                "{path}: ok — {} snapshots across {} experiments",
                summary.snapshots, summary.experiments
            ),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Validates benchmark artefacts: JSONL metrics streams produced by
//! `--metrics-out` and the committed `BENCH_*.json` records.
//!
//! Usage:
//!
//! ```text
//! metrics_lint [--sessions] <metrics.jsonl | BENCH_record.json> [...]
//! ```
//!
//! Files ending in `.json` are linted as single benchmark records —
//! the sequential-vs-parallel `BenchRecord` shape (old records without
//! the `iters`/`warmup` iteration fields still parse), the `--stages`
//! `SimdBenchRecord` shape, the `--ws` scheduler-comparison
//! `WsBenchRecord` shape, the replay-service `ServeBenchRecord`
//! shape, the per-workload baseline `WorkloadBenchRecord` shape
//! (sorted rows, balanced read/write arithmetic, recomputed saving
//! column), or a `tracegen import --report` `ImportReport` (balanced
//! access counts; drops only in lenient mode, and then with a named
//! first casualty) — with every throughput figure required to be
//! finite and non-negative. Any record claiming a parallel speedup with
//! more jobs than the machine had cores at measurement time is rejected
//! as unreliable: oversubscribed "speedups" measure scheduler jitter,
//! not the pool (`BENCH_parallel.json` once shipped exactly that —
//! `jobs: 4` on `cores: 1`). A serve record measured on fewer than 4
//! cores must carry its `skip_note` disclaimer — a bare concurrency
//! "speedup" from a 1-core box is the same lie in multi-tenant
//! clothing. Anything else is linted as a snapshot stream: every line
//! must parse as a `cnt_obs::Snapshot` with at least one cache level,
//! and within each experiment stream the epochs must count up from
//! zero with non-decreasing access totals. With `--sessions`, streams
//! are instead linted as **multiplexed per-session** logs (as written
//! by `cnt_serve` into `serve_metrics.jsonl`): every experiment id
//! must carry an `sNNNN/` session prefix, and the per-experiment
//! monotonicity rules apply within each session's streams. Exits
//! non-zero on the first violation, naming the offending file. CI runs
//! this over the metrics smoke stream, the serve smoke log, and the
//! committed bench records.

use std::process::ExitCode;

use cnt_bench::{
    BenchRecord, ServeBenchRecord, SimdBenchRecord, StageRecord, WorkloadBenchRecord, WsBenchRecord,
};
use cnt_import::ImportReport;

fn check_rate(what: &str, rate: f64) -> Result<(), String> {
    if !rate.is_finite() || rate < 0.0 {
        return Err(format!(
            "{what}: throughput {rate} is not a finite non-negative number"
        ));
    }
    Ok(())
}

fn lint_stage(stage: &StageRecord) -> Result<(), String> {
    let name = &stage.stage;
    if stage.iters == 0 {
        return Err(format!("stage `{name}`: zero measured iterations"));
    }
    check_rate(&format!("stage `{name}` mean"), stage.per_second.mean)?;
    check_rate(&format!("stage `{name}` stddev"), stage.per_second.stddev)?;
    check_rate(&format!("stage `{name}` min"), stage.per_second.min)?;
    if stage.per_second.min > stage.per_second.mean {
        return Err(format!(
            "stage `{name}`: min {} exceeds mean {}",
            stage.per_second.min, stage.per_second.mean
        ));
    }
    Ok(())
}

/// Rejects speedup claims measured with more jobs than hardware threads.
fn check_jobs_vs_cores(what: &str, jobs: usize, cores: usize) -> Result<(), String> {
    if jobs > cores {
        return Err(format!(
            "{what}: --jobs {jobs} exceeds the {cores} core(s) present at measurement \
             time; the recorded speedup is unreliable (remeasure with jobs <= cores)"
        ));
    }
    Ok(())
}

/// Checks one energy figure: finite and non-negative.
fn check_energy(what: &str, fj: f64) -> Result<(), String> {
    if !fj.is_finite() || fj < 0.0 {
        return Err(format!(
            "{what}: energy {fj} fJ is not a finite non-negative number"
        ));
    }
    Ok(())
}

/// Lints a `tracegen import --report` record: the access arithmetic
/// must balance and a lossy import must say so.
fn lint_import_report(report: &ImportReport) -> Result<String, String> {
    if report.accesses == 0 {
        return Err("import report with zero accesses (the importer refuses these)".into());
    }
    if report.accesses != report.reads + report.writes + report.ifetches {
        return Err(format!(
            "import report arithmetic is broken: {} accesses != {} reads + {} writes + {} ifetches",
            report.accesses, report.reads, report.writes, report.ifetches
        ));
    }
    if report.dropped > 0 {
        if !report.lenient {
            return Err(format!(
                "import report drops {} record(s) without lenient mode — strict imports \
                 must fail, not skip",
                report.dropped
            ));
        }
        if report.first_drop.is_none() {
            return Err(format!(
                "import report drops {} record(s) but first_drop is absent; lossy imports \
                 must name their first casualty",
                report.dropped
            ));
        }
    }
    if report.chunks == 0 {
        return Err("import report with zero output chunks".into());
    }
    if report.identity.len() != 16 || !report.identity.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!(
            "import report identity `{}` is not a 16-digit hex fingerprint",
            report.identity
        ));
    }
    Ok(format!(
        "ok — {} {} record(s) -> {} accesses ({} dropped), identity {}",
        report.records_in, report.format, report.accesses, report.dropped, report.identity
    ))
}

/// Lints the `--per-workload-baseline` record: sorted rows, balanced
/// access arithmetic, finite energies, and an honest saving column.
fn lint_workload_record(record: &WorkloadBenchRecord) -> Result<String, String> {
    if record.rows.is_empty() {
        return Err("workload record with no rows".into());
    }
    for pair in record.rows.windows(2) {
        if pair[0].id >= pair[1].id {
            return Err(format!(
                "workload rows are not strictly sorted by id: `{}` then `{}`",
                pair[0].id, pair[1].id
            ));
        }
    }
    for row in &record.rows {
        let id = &row.id;
        if row.source != "synthetic" && row.source != "imported" {
            return Err(format!(
                "workload `{id}`: source `{}` is neither synthetic nor imported",
                row.source
            ));
        }
        if row.accesses == 0 {
            return Err(format!("workload `{id}` has zero accesses"));
        }
        if row.accesses != row.reads + row.writes {
            return Err(format!(
                "workload `{id}` arithmetic is broken: {} accesses != {} reads + {} writes",
                row.accesses, row.reads, row.writes
            ));
        }
        check_energy(
            &format!("workload `{id}` baseline read"),
            row.baseline_read_fj,
        )?;
        check_energy(
            &format!("workload `{id}` baseline write"),
            row.baseline_write_fj,
        )?;
        check_energy(
            &format!("workload `{id}` baseline total"),
            row.baseline_total_fj,
        )?;
        check_energy(
            &format!("workload `{id}` adaptive total"),
            row.adaptive_total_fj,
        )?;
        let expect = if row.baseline_total_fj > 0.0 {
            100.0 * (row.baseline_total_fj - row.adaptive_total_fj) / row.baseline_total_fj
        } else {
            0.0
        };
        if (row.saving_percent - expect).abs() > 1e-6 {
            return Err(format!(
                "workload `{id}` saving column says {:.6}% but the totals give {expect:.6}%",
                row.saving_percent
            ));
        }
    }
    if record.cores < 4 && record.skip_note.is_none() {
        return Err(format!(
            "workload record measured on {} core(s) without a skip_note disclaimer",
            record.cores
        ));
    }
    let imported = record
        .rows
        .iter()
        .filter(|r| r.source == "imported")
        .count();
    Ok(format!(
        "ok — {} workload(s) ({} imported), savings {:.2}%..{:.2}%",
        record.rows.len(),
        imported,
        record
            .rows
            .iter()
            .map(|r| r.saving_percent)
            .fold(f64::INFINITY, f64::min),
        record
            .rows
            .iter()
            .map(|r| r.saving_percent)
            .fold(f64::NEG_INFINITY, f64::max),
    ))
}

/// Lints one `BENCH_*.json` record of any recognised shape.
fn lint_bench_record(text: &str) -> Result<String, String> {
    // Most-distinctive shapes first: every record type here has at
    // least one required field no other type shares, so the try-order
    // only matters for error messages, not correctness.
    if let Ok(report) = serde_json::from_str::<ImportReport>(text) {
        return lint_import_report(&report);
    }
    if let Ok(record) = serde_json::from_str::<WorkloadBenchRecord>(text) {
        return lint_workload_record(&record);
    }
    if let Ok(record) = serde_json::from_str::<SimdBenchRecord>(text) {
        if record.stages.is_empty() {
            return Err("stage record with no stages".into());
        }
        for stage in &record.stages {
            lint_stage(stage)?;
        }
        return Ok(format!(
            "ok — {} stages, best {:.1}x over baseline",
            record.stages.len(),
            record.best_speedup()
        ));
    }
    if let Ok(record) = serde_json::from_str::<WsBenchRecord>(text) {
        check_rate("static pass", record.static_pass.accesses_per_second)?;
        check_rate("work-stealing pass", record.ws_pass.accesses_per_second)?;
        if record.skew == 0 {
            return Err("ws record with zero skew (no straggler was injected)".into());
        }
        if record.static_pass.jobs != record.jobs || record.ws_pass.jobs != record.jobs {
            return Err(format!(
                "ws record claims --jobs {} but passes ran with {} and {}",
                record.jobs, record.static_pass.jobs, record.ws_pass.jobs
            ));
        }
        check_jobs_vs_cores("ws comparison", record.jobs, record.cores)?;
        return Ok(format!(
            "ok — skew x{}, {:.2}x work-stealing speedup at --jobs {} on {} core(s)",
            record.skew,
            record.speedup(),
            record.jobs,
            record.cores
        ));
    }
    if let Ok(record) = serde_json::from_str::<ServeBenchRecord>(text) {
        check_rate("serial sessions pass", record.serial.accesses_per_second)?;
        check_rate(
            "concurrent sessions pass",
            record.concurrent.accesses_per_second,
        )?;
        if record.sessions == 0 {
            return Err("serve record with zero sessions".into());
        }
        if record.serial.jobs != record.jobs || record.concurrent.jobs != record.jobs {
            return Err(format!(
                "serve record claims --jobs {} but passes ran with {} and {}",
                record.jobs, record.serial.jobs, record.concurrent.jobs
            ));
        }
        check_jobs_vs_cores("serve sessions", record.jobs, record.cores)?;
        if record.cores < 4 && record.skip_note.is_none() {
            return Err(format!(
                "serve record measured on {} core(s) claims a {:.2}x concurrency speedup \
                 without a skip_note disclaimer; remeasure on >=4 cores or record the skip",
                record.cores,
                record.speedup()
            ));
        }
        return Ok(format!(
            "ok — {} sessions, {:.2}x concurrent speedup on {} core(s){}",
            record.sessions,
            record.speedup(),
            record.cores,
            if record.skip_note.is_some() {
                " (scaling claim skipped)"
            } else {
                ""
            }
        ));
    }
    match serde_json::from_str::<BenchRecord>(text) {
        Ok(record) => {
            check_rate("sequential pass", record.sequential.accesses_per_second)?;
            check_rate("parallel pass", record.parallel.accesses_per_second)?;
            if record.sequential.jobs != 1 {
                return Err(format!(
                    "sequential pass ran with --jobs {}",
                    record.sequential.jobs
                ));
            }
            check_jobs_vs_cores("parallel pass", record.parallel.jobs, record.cores)?;
            Ok(format!(
                "ok — {} accesses/pass, {:.2}x speedup on {} core(s)",
                record.accesses_per_pass,
                record.speedup(),
                record.cores
            ))
        }
        Err(e) => Err(format!("not a recognised bench record: {e}")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sessions_mode = args.iter().any(|a| a == "--sessions");
    args.retain(|a| a != "--sessions");
    let paths = args;
    if paths.is_empty() || paths.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: metrics_lint [--sessions] <metrics.jsonl | BENCH_record.json>...");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        if text.is_empty() {
            eprintln!("{path}: empty metrics stream");
            failed = true;
            continue;
        }
        if path.ends_with(".json") {
            match lint_bench_record(&text) {
                Ok(summary) => println!("{path}: {summary}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if sessions_mode {
            match cnt_obs::validate_sessions_jsonl(&text) {
                Ok(summary) => println!(
                    "{path}: ok — {} snapshots across {} sessions ({} experiments)",
                    summary.snapshots, summary.sessions, summary.experiments
                ),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        match cnt_obs::validate_jsonl(&text) {
            Ok(summary) => println!(
                "{path}: ok — {} snapshots across {} experiments",
                summary.snapshots, summary.experiments
            ),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Seeded direction-metadata fault-injection campaigns.
//!
//! The shared engine behind the `fig13b` experiment and the
//! `fault_campaign` binary: replay a workload while injecting soft-error
//! upsets into the protected direction vector at a fixed rate, then
//! compare the final memory image against a fault-free golden replay and
//! attribute every corrupted word as *detected* (its line is in the
//! cache's degradation log) or *silent* (nothing noticed).
//!
//! Campaign cells are independent, so a sweep runs on the shared worker
//! pool ([`crate::pool`]); cells are seeded and replay ids are scoped,
//! making the rendered table and the metrics stream byte-identical
//! between `--seq` and `--jobs N`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use cnt_cache::prelude::*;
use cnt_sim::trace::Trace;
use cnt_sim::MainMemory;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One campaign cell: how the cache is protected and how hard it is hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Direction-metadata protection mode under test.
    pub protection: ProtectionMode,
    /// Response to uncorrectable faults.
    pub policy: MetadataFaultPolicy,
    /// Upsets to inject, evenly spaced over the trace.
    pub faults: usize,
    /// Scrub the metadata at every injection interval (protected modes
    /// only; scrubbing an unprotected cache checks nothing).
    pub scrub: bool,
    /// RNG seed for victim line/partition selection.
    pub seed: u64,
}

/// What one campaign cell measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The cell that produced this outcome.
    pub spec: CampaignSpec,
    /// Upsets actually landed (a cold cache can skip early slots).
    pub injected: u64,
    /// Upsets noticed by a protection check.
    pub detected: u64,
    /// Upsets repaired in place (SECDED or check-bit-only).
    pub corrected: u64,
    /// Upsets beyond repair, handed to the fault policy.
    pub uncorrected: u64,
    /// Lines dropped by [`MetadataFaultPolicy::InvalidateLine`].
    pub lines_invalidated: u64,
    /// Lines pinned by [`MetadataFaultPolicy::FallbackBaseline`].
    pub lines_pinned: u64,
    /// Scrub passes completed.
    pub scrub_passes: u64,
    /// 64-bit words in the final memory image that differ from the
    /// fault-free golden replay.
    pub corrupted_words: u64,
    /// Corrupted words on lines the cache *knew* it degraded.
    pub detected_corruptions: u64,
    /// Corrupted words nothing noticed — the failure mode this PR's
    /// protection exists to eliminate.
    pub silent_corruptions: u64,
    /// Energy spent storing/checking protection bits, in pJ.
    pub protection_pj: f64,
    /// Total dynamic energy of the replay, in pJ.
    pub total_pj: f64,
}

impl CampaignOutcome {
    /// Protection energy as a percentage of the cell's total.
    #[must_use]
    pub fn protection_overhead_percent(&self) -> f64 {
        if self.total_pj == 0.0 {
            0.0
        } else {
            self.protection_pj / self.total_pj * 100.0
        }
    }
}

/// Runs one campaign cell over `trace`.
///
/// The cache mirrors the `fig13` setup (adaptive encoding, paper D-Cache
/// geometry, write-back) so the `ProtectionMode::None` cell reproduces
/// the original fig13 corruption counts exactly — same seed, same RNG
/// draw sequence, same injection schedule.
///
/// # Panics
///
/// Panics if the trace fails to replay, or — by design — when
/// [`MetadataFaultPolicy::Panic`] meets an uncorrectable upset.
#[must_use]
pub fn run_cell(trace: &Trace, spec: &CampaignSpec) -> CampaignOutcome {
    // Golden image: same trace, no faults, plain replay.
    let mut golden = MainMemory::new();
    for access in trace {
        if access.is_write() {
            golden.store(access.addr, access.width, access.value);
        }
    }

    let config = CntCacheConfig::builder()
        .policy(EncodingPolicy::adaptive_default())
        .protection(spec.protection)
        .fault_policy(spec.policy)
        .build()
        .expect("static geometry");
    let line_bytes = u64::from(config.geometry.line_bytes());
    let mut cache = CntCache::new(config).expect("valid cache");

    let epoch_len = cnt_obs::epoch_len();
    let replay_id = epoch_len.map(|_| cnt_obs::next_replay_path());
    let mut epoch = 0u64;

    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let interval = (trace.len() / (spec.faults + 1)).max(1);
    let scrub = spec.scrub && spec.protection != ProtectionMode::None;
    let mut injected = 0;
    for (i, access) in trace.iter().enumerate() {
        cache.access(access).expect("trace runs");
        if injected < spec.faults && i % interval == interval - 1 {
            // Same victim selection as fig13: counted line index, then a
            // partition drawn from the codec layout.
            let count = cache.valid_line_count();
            if count > 0 {
                let loc = cache
                    .nth_valid_line(rng.gen_range(0..count))
                    .expect("index below the valid-line count");
                let partition = rng.gen_range(0..cache.partitions());
                if cache.inject_direction_fault(loc, partition) {
                    injected += 1;
                }
            }
            // Scrubbing at the injection interval keeps at most one
            // upset outstanding per line, so SECDED always corrects.
            if scrub {
                cache.scrub_metadata();
            }
        }
        if let (Some(every), Some(id)) = (epoch_len, replay_id.as_deref()) {
            let accesses = i as u64 + 1;
            if accesses.is_multiple_of(every) {
                cnt_obs::record(cnt_obs::Snapshot::capture(&cache, id, epoch, accesses));
                epoch += 1;
            }
        }
    }
    cache.flush();

    // Compare every written word against the golden image, attributing
    // mismatches by whether their line is in the degradation log.
    let degraded: BTreeSet<_> = cache
        .degraded_line_bases()
        .iter()
        .map(|base| base.align_down(line_bytes))
        .collect();
    let mut corrupted = 0u64;
    let mut detected_corruptions = 0u64;
    let mut seen = BTreeSet::new();
    for access in trace.iter().filter(|a| a.is_write()) {
        let addr = access.addr.align_down(8);
        if seen.insert(addr) && cache.memory_mut().load(addr, 8) != golden.load(addr, 8) {
            corrupted += 1;
            if degraded.contains(&addr.align_down(line_bytes)) {
                detected_corruptions += 1;
            }
        }
    }

    let r = *cache.reliability_counters();
    let registry = cnt_obs::registry();
    registry
        .counter("reliability.faults_injected")
        .add(r.faults_injected);
    registry
        .counter("reliability.faults_corrected")
        .add(r.faults_corrected);
    registry
        .counter("reliability.lines_invalidated")
        .add(r.lines_invalidated);
    registry
        .counter("reliability.scrub_passes")
        .add(r.scrub_passes);

    let breakdown = cache.meter().breakdown();
    CampaignOutcome {
        spec: *spec,
        injected: r.faults_injected,
        detected: r.faults_detected,
        corrected: r.faults_corrected,
        uncorrected: r.faults_uncorrected,
        lines_invalidated: r.lines_invalidated,
        lines_pinned: r.lines_pinned,
        scrub_passes: r.scrub_passes,
        corrupted_words: corrupted,
        detected_corruptions,
        silent_corruptions: corrupted - detected_corruptions,
        protection_pj: breakdown.protection_energy().picojoules(),
        total_pj: breakdown.total().picojoules(),
    }
}

/// The default campaign grid: every protection mode crossed with the
/// fault policies it distinguishes, at each requested fault count.
///
/// `None` carries a single placeholder policy row (no protection means
/// no policy ever fires); parity — detect-only — is crossed with both
/// degradation policies; SECDED corrects everything at these rates, so
/// one row suffices.
#[must_use]
pub fn default_grid(fault_counts: &[usize], seed: u64) -> Vec<CampaignSpec> {
    let modes: &[(ProtectionMode, MetadataFaultPolicy, bool)] = &[
        (
            ProtectionMode::None,
            MetadataFaultPolicy::InvalidateLine,
            false,
        ),
        (
            ProtectionMode::Parity,
            MetadataFaultPolicy::InvalidateLine,
            true,
        ),
        (
            ProtectionMode::Parity,
            MetadataFaultPolicy::FallbackBaseline,
            true,
        ),
        (
            ProtectionMode::Secded,
            MetadataFaultPolicy::InvalidateLine,
            true,
        ),
    ];
    let mut grid = Vec::new();
    for &faults in fault_counts {
        for &(protection, policy, scrub) in modes {
            grid.push(CampaignSpec {
                protection,
                policy,
                faults,
                scrub,
                seed,
            });
        }
    }
    grid
}

/// Runs every cell of `grid` over `trace` on the shared worker pool,
/// returning outcomes in grid order.
#[must_use]
pub fn sweep(trace: &Trace, grid: &[CampaignSpec]) -> Vec<CampaignOutcome> {
    crate::pool::par_map(grid, |spec| run_cell(trace, spec))
}

/// Renders a sweep as a markdown-style table.
#[must_use]
pub fn render(outcomes: &[CampaignOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:>6} | {:>6} | {:>17} | {:>5} | {:>8} | {:>8} | {:>9} | {:>11} | {:>9} | {:>6} | {:>9} |",
        "faults",
        "mode",
        "policy",
        "scrub",
        "injected",
        "detected",
        "corrected",
        "uncorrected",
        "corrupted",
        "silent",
        "protect %"
    );
    for o in outcomes {
        let policy = if o.spec.protection == ProtectionMode::None {
            "-".to_string()
        } else {
            o.spec.policy.to_string()
        };
        let _ = writeln!(
            out,
            "| {:>6} | {:>6} | {:>17} | {:>5} | {:>8} | {:>8} | {:>9} | {:>11} | {:>9} | {:>6} | {:>8.2}% |",
            o.spec.faults,
            o.spec.protection,
            policy,
            if o.spec.scrub && o.spec.protection != ProtectionMode::None {
                "yes"
            } else {
                "no"
            },
            o.injected,
            o.detected,
            o.corrected,
            o.uncorrected,
            o.corrupted_words,
            o.silent_corruptions,
            o.protection_overhead_percent(),
        );
    }
    out
}

/// One history-register (H-counter) fault-injection cell: the same
/// seeded replay-and-upset schedule as [`run_cell`], but the victims are
/// the per-line prediction history counters rather than the direction
/// vector. An upset here never corrupts data — it corrupts *decisions*:
/// the predictor sees a wrong access/write count and mistimes or
/// misdirects encoding switches. "Skew" is any divergence of the
/// encoding counters from a fault-free replay under the same
/// protection; skew with zero detections is the silent failure mode the
/// protected H register exists to eliminate.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryOutcome {
    /// Protection mode under test.
    pub protection: ProtectionMode,
    /// Upsets requested.
    pub faults: usize,
    /// Upsets actually landed.
    pub injected: u64,
    /// Upsets noticed by a protection check.
    pub detected: u64,
    /// Upsets repaired in place.
    pub corrected: u64,
    /// Upsets beyond repair (reset to a clean window).
    pub uncorrected: u64,
    /// Prediction windows completed in the faulted replay.
    pub windows: u64,
    /// Prediction windows completed in the fault-free golden replay.
    pub golden_windows: u64,
    /// Encoding switches applied in the faulted replay.
    pub switches: u64,
    /// Encoding switches applied in the golden replay.
    pub golden_switches: u64,
}

impl HistoryOutcome {
    /// Did the upsets change any encoding decision?
    #[must_use]
    pub fn skewed(&self) -> bool {
        self.windows != self.golden_windows || self.switches != self.golden_switches
    }

    /// Skewed decisions that nothing detected — silent prediction skew.
    #[must_use]
    pub fn silent_skew(&self) -> bool {
        self.skewed() && self.detected == 0
    }
}

/// Runs one H-register fault cell over `trace`: a fault-free golden
/// replay and a faulted replay, both under `protection`, and compares
/// their encoding counters.
///
/// # Panics
///
/// Panics if the trace fails to replay.
#[must_use]
pub fn run_history_cell(
    trace: &Trace,
    protection: ProtectionMode,
    faults: usize,
    seed: u64,
) -> HistoryOutcome {
    let build = |protection| {
        let config = CntCacheConfig::builder()
            .policy(EncodingPolicy::adaptive_default())
            .protection(protection)
            .build()
            .expect("static geometry");
        CntCache::new(config).expect("valid cache")
    };

    // Golden counters: same protection, no upsets — protection overhead
    // itself must not count as skew.
    let mut golden = build(protection);
    for access in trace {
        golden.access(access).expect("trace runs");
    }
    golden.flush();
    let golden_counters = *golden.encoding_counters();

    let mut cache = build(protection);
    let mut rng = SmallRng::seed_from_u64(seed);
    let interval = (trace.len() / (faults + 1)).max(1);
    let mut injected = 0;
    for (i, access) in trace.iter().enumerate() {
        cache.access(access).expect("trace runs");
        if injected < faults && i % interval == interval - 1 {
            let count = cache.valid_line_count();
            if count > 0 {
                let loc = cache
                    .nth_valid_line(rng.gen_range(0..count))
                    .expect("index below the valid-line count");
                let bit = rng.gen_range(0..cache.history_data_bits());
                if cache.inject_history_fault(loc, bit) {
                    injected += 1;
                }
            }
        }
    }
    cache.flush();

    let r = *cache.reliability_counters();
    let counters = *cache.encoding_counters();
    HistoryOutcome {
        protection,
        faults,
        injected: injected as u64,
        detected: r.faults_detected,
        corrected: r.faults_corrected,
        uncorrected: r.faults_uncorrected,
        windows: counters.windows,
        golden_windows: golden_counters.windows,
        switches: counters.switches_applied,
        golden_switches: golden_counters.switches_applied,
    }
}

/// Runs an H-register cell for every (protection, fault count) pair on
/// the shared worker pool, in grid order.
#[must_use]
pub fn sweep_history(
    trace: &Trace,
    grid: &[(ProtectionMode, usize)],
    seed: u64,
) -> Vec<HistoryOutcome> {
    crate::pool::par_map(grid, |&(protection, faults)| {
        run_history_cell(trace, protection, faults, seed)
    })
}

/// Renders a history sweep as a markdown-style table.
#[must_use]
pub fn render_history(outcomes: &[HistoryOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:>6} | {:>6} | {:>8} | {:>8} | {:>9} | {:>15} | {:>17} | {:>11} |",
        "faults",
        "mode",
        "injected",
        "detected",
        "corrected",
        "windows (gold)",
        "switches (gold)",
        "silent skew"
    );
    for o in outcomes {
        let _ = writeln!(
            out,
            "| {:>6} | {:>6} | {:>8} | {:>8} | {:>9} | {:>6} ({:>6}) | {:>7} ({:>7}) | {:>11} |",
            o.faults,
            o.protection,
            o.injected,
            o.detected,
            o.corrected,
            o.windows,
            o.golden_windows,
            o.switches,
            o.golden_switches,
            if o.silent_skew() { "YES" } else { "no" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_workloads::kernels;

    fn spec(
        protection: ProtectionMode,
        policy: MetadataFaultPolicy,
        faults: usize,
    ) -> CampaignSpec {
        CampaignSpec {
            protection,
            policy,
            faults,
            scrub: true,
            seed: 0xFA17,
        }
    }

    #[test]
    fn unprotected_cell_reproduces_fig13_counts() {
        let w = kernels::matmul(12, 1);
        for faults in [1, 8] {
            let cell = run_cell(
                &w.trace,
                &CampaignSpec {
                    protection: ProtectionMode::None,
                    policy: MetadataFaultPolicy::InvalidateLine,
                    faults,
                    scrub: false,
                    seed: 2,
                },
            );
            assert_eq!(
                cell.corrupted_words as usize,
                crate::experiments::fig13::corrupted_words(&w.trace, faults, 2),
                "protection=None must match the original fig13 run"
            );
            assert_eq!(cell.detected, 0, "nothing detects without protection");
            assert_eq!(cell.silent_corruptions, cell.corrupted_words);
        }
    }

    #[test]
    fn secded_with_scrub_has_zero_silent_corruption() {
        let w = kernels::matmul(12, 1);
        for faults in [1, 4, 16] {
            let cell = run_cell(
                &w.trace,
                &spec(
                    ProtectionMode::Secded,
                    MetadataFaultPolicy::InvalidateLine,
                    faults,
                ),
            );
            assert_eq!(
                cell.silent_corruptions, 0,
                "SECDED+scrub must be silent-free"
            );
            assert_eq!(
                cell.corrupted_words, 0,
                "single upsets are always corrected"
            );
            assert_eq!(cell.uncorrected, 0);
            assert_eq!(cell.corrected, cell.injected);
            assert!(cell.protection_pj > 0.0, "protection energy is itemized");
        }
    }

    #[test]
    fn parity_detects_and_degrades_without_silent_corruption() {
        let w = kernels::matmul(12, 1);
        let cell = run_cell(
            &w.trace,
            &spec(
                ProtectionMode::Parity,
                MetadataFaultPolicy::InvalidateLine,
                8,
            ),
        );
        assert_eq!(cell.detected, cell.injected);
        assert_eq!(cell.corrected, 0, "parity cannot correct");
        assert_eq!(
            cell.silent_corruptions, 0,
            "every lost word sits on a logged degraded line"
        );
    }

    #[test]
    fn unprotected_history_cell_skews_silently() {
        let w = kernels::matmul(12, 1);
        let cell = run_history_cell(&w.trace, ProtectionMode::None, 8, 0xFA17);
        assert!(cell.injected > 0, "upsets must land");
        assert_eq!(cell.detected, 0, "nothing detects without protection");
        assert!(
            cell.skewed(),
            "H upsets must change encoding decisions: {cell:?}"
        );
        assert!(cell.silent_skew());
    }

    #[test]
    fn protected_history_cell_has_zero_skew() {
        let w = kernels::matmul(12, 1);
        for faults in [2, 8, 16] {
            let cell = run_history_cell(&w.trace, ProtectionMode::Secded, faults, 0xFA17);
            assert!(cell.injected > 0, "upsets must land");
            assert!(!cell.skewed(), "SECDED must repair before skew: {cell:?}");
            // Not every upset is *seen*: a victim line can be evicted
            // and refilled clean before its next access, and two upsets
            // stacking on one register become a detected-uncorrectable
            // reset (2 upsets -> 1 event). What must never happen is a
            // seen upset left unflagged — the skew check above — and at
            // least some singles must be corrected in place.
            assert!(cell.corrected >= 1, "some upsets must be caught: {cell:?}");
            assert!(cell.corrected + cell.uncorrected <= cell.injected);
            assert_eq!(cell.detected, cell.corrected + cell.uncorrected);
        }
    }

    #[test]
    fn history_sweep_matches_sequential_and_renders() {
        let w = kernels::matmul(10, 1);
        let grid = [(ProtectionMode::None, 4), (ProtectionMode::Secded, 4)];
        let pooled = sweep_history(&w.trace, &grid, 7);
        let sequential: Vec<_> = grid
            .iter()
            .map(|&(p, f)| run_history_cell(&w.trace, p, f, 7))
            .collect();
        assert_eq!(pooled, sequential);
        let rendered = render_history(&pooled);
        assert!(rendered.contains("silent skew"));
        assert_eq!(rendered.lines().count(), 3);
    }

    #[test]
    fn sweep_matches_a_sequential_run() {
        let w = kernels::matmul(10, 1);
        let grid = default_grid(&[4], 11);
        let pooled = sweep(&w.trace, &grid);
        let sequential: Vec<_> = grid.iter().map(|s| run_cell(&w.trace, s)).collect();
        assert_eq!(pooled, sequential, "cells are pure functions of their spec");
    }

    #[test]
    fn grid_covers_every_mode_at_every_rate() {
        let grid = default_grid(&[2, 8], 7);
        assert_eq!(grid.len(), 8);
        assert!(grid.iter().any(|s| s.protection == ProtectionMode::None));
        assert!(grid
            .iter()
            .any(|s| s.policy == MetadataFaultPolicy::FallbackBaseline));
        let rendered = render(&sweep(&kernels::matmul(8, 1).trace, &grid[..2]));
        assert!(rendered.contains("| faults |"));
        assert!(rendered.lines().count() >= 3);
    }
}

//! Shared simulation plumbing for the experiments.

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy, EnergyReport};
use cnt_energy::SramEnergyModel;
use cnt_sim::trace::{AccessBatch, Trace};
use cnt_sim::ReplacementKind;
use cnt_workloads::Workload;

use crate::pool;

/// The paper's D-Cache configuration: 32 KiB, 64-byte lines, 8-way, LRU.
///
/// # Panics
///
/// Never panics: the constants are statically valid.
pub fn dcache_config(name: &str, policy: EncodingPolicy) -> CntCacheConfig {
    CntCacheConfig::builder()
        .name(name)
        .size_bytes(32 * 1024)
        .line_bytes(64)
        .associativity(8)
        .replacement(ReplacementKind::Lru)
        .policy(policy)
        .build()
        .expect("static D-Cache geometry is valid")
}

/// Runs one trace to completion (including a final flush) under the given
/// configuration and returns the report.
///
/// The replay goes through [`cnt_obs::replay`]: with no metrics sink
/// installed that is the same allocation-free loop as [`CntCache::run`];
/// with one installed (`--metrics-out`) it emits one snapshot per epoch
/// under this replay's deterministic scope id.
///
/// # Panics
///
/// Panics if the configuration is invalid or the trace contains malformed
/// accesses — both indicate harness bugs, not user errors.
pub fn run_trace(config: CntCacheConfig, trace: &Trace) -> EnergyReport {
    let mut cache = CntCache::new(config).expect("experiment configuration must be valid");
    cnt_obs::replay(&mut cache, trace).expect("experiment traces are well-formed");
    cache.flush();
    cache.into_report()
}

/// Runs a trace under the paper's D-Cache geometry with the given policy.
pub fn run_dcache(policy: EncodingPolicy, trace: &Trace) -> EnergyReport {
    run_trace(dcache_config("L1D", policy), trace)
}

/// Batched counterpart of [`run_trace`]: replays a prebuilt
/// struct-of-arrays [`AccessBatch`] through the columnar hot loop
/// ([`cnt_obs::replay_batch`]). Produces a report identical to
/// [`run_trace`] over the same records — only the loop shape differs.
///
/// # Panics
///
/// As [`run_trace`].
pub fn run_trace_batch(config: CntCacheConfig, batch: &AccessBatch) -> EnergyReport {
    let mut cache = CntCache::new(config).expect("experiment configuration must be valid");
    cnt_obs::replay_batch(&mut cache, batch).expect("experiment traces are well-formed");
    cache.flush();
    cache.into_report()
}

/// Runs a prebuilt batch under the paper's D-Cache geometry.
pub fn run_dcache_batch(policy: EncodingPolicy, batch: &AccessBatch) -> EnergyReport {
    run_trace_batch(dcache_config("L1D", policy), batch)
}

/// Runs a trace under the D-Cache geometry with a specific energy model.
pub fn run_dcache_with_model(
    policy: EncodingPolicy,
    model: SramEnergyModel,
    trace: &Trace,
) -> EnergyReport {
    let mut config = dcache_config("L1D", policy);
    config.energy = model;
    run_trace(config, trace)
}

/// Replays every (workload × policy) combination on the shared thread
/// pool and returns, for each workload in input order, the reports in
/// policy order.
///
/// Each replay is an independent deterministic simulation, so the result
/// is byte-identical to the equivalent nested sequential loops — only
/// wall-clock time changes with the `--jobs` setting.
pub fn run_dcache_matrix(
    workloads: &[Workload],
    policies: &[EncodingPolicy],
) -> Vec<Vec<EnergyReport>> {
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..policies.len()).map(move |p| (w, p)))
        .collect();
    let mut reports = pool::par_map(&jobs, |&(w, p)| {
        run_dcache(policies[p], &workloads[w].trace)
    })
    .into_iter();
    workloads
        .iter()
        .map(|_| {
            (0..policies.len())
                .map(|_| reports.next().expect("one per job"))
                .collect()
        })
        .collect()
}

/// Replays one trace under several policies in parallel, in policy order.
pub fn run_dcache_set(policies: &[EncodingPolicy], trace: &Trace) -> Vec<EnergyReport> {
    pool::par_map(policies, |policy| run_dcache(*policy, trace))
}

/// Geometric-mean helper for relative metrics.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of nothing");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_workloads::kernels;

    #[test]
    fn dcache_config_matches_paper() {
        let c = dcache_config("x", EncodingPolicy::None);
        assert_eq!(c.geometry.size_bytes(), 32 * 1024);
        assert_eq!(c.geometry.associativity(), 8);
    }

    #[test]
    fn run_trace_produces_activity() {
        let w = kernels::histogram(256, 16, 1);
        let r = run_dcache(EncodingPolicy::None, &w.trace);
        assert_eq!(r.stats.accesses() as usize, w.trace.len());
        assert!(r.total().femtojoules() > 0.0);
    }

    #[test]
    fn batched_replay_matches_iterator_replay() {
        let w = kernels::histogram(256, 16, 1);
        let batch = AccessBatch::from_trace(&w.trace);
        for policy in [EncodingPolicy::None, EncodingPolicy::adaptive_default()] {
            let a = run_dcache(policy, &w.trace);
            let b = run_dcache_batch(policy, &batch);
            assert_eq!(a, b, "batched and iterator replays must agree exactly");
        }
    }

    #[test]
    fn means() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}

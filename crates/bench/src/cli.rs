//! Strict command-line parsing shared by the bench binaries.
//!
//! Every bin in this crate enforces the same contract: unknown flags,
//! missing values, malformed numbers, and out-of-range fractions are
//! loud usage errors (exit code 2), never silent defaults. The helpers
//! here used to be copied between `tracegen`, `experiments`,
//! `bench_throughput` and `fault_campaign`; they live here once so the
//! error texts — which CI greps for — cannot drift apart.

use std::process::ExitCode;

/// A subcommand failure: bad invocation (exit 2) vs runtime error
/// (exit 1).
#[derive(Debug)]
pub enum CmdError {
    /// The invocation itself is wrong; the caller should print usage.
    Usage(String),
    /// The invocation was fine but the work failed.
    Runtime(String),
}

impl CmdError {
    /// Prints `error: …` to stderr and returns the conventional exit
    /// code (2 for usage, 1 for runtime) — the one-line adapter for
    /// bins whose `main` parses inline rather than through a
    /// `Result`-returning command function.
    pub fn exit(self) -> ExitCode {
        match self {
            CmdError::Usage(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
            CmdError::Runtime(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Takes the value following `flag`, or errors.
pub fn flag_value<'a>(
    iter: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a str, CmdError> {
    iter.next()
        .map(String::as_str)
        .ok_or_else(|| CmdError::Usage(format!("{flag} needs a value")))
}

/// Parses a fraction flag: must be a finite number in `[0, 1]`.
pub fn fraction_flag(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<f64, CmdError> {
    let raw = flag_value(iter, flag)?;
    let v: f64 = raw
        .parse()
        .map_err(|_| CmdError::Usage(format!("{flag}: `{raw}` is not a number")))?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(CmdError::Usage(format!(
            "{flag}: `{raw}` must be a finite fraction in [0, 1]"
        )));
    }
    Ok(v)
}

/// Parses an integer flag (floats like `5000.5` are rejected).
pub fn int_flag<T: std::str::FromStr>(
    iter: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, CmdError> {
    let raw = flag_value(iter, flag)?;
    raw.parse()
        .map_err(|_| CmdError::Usage(format!("{flag}: `{raw}` is not a valid integer")))
}

/// Parses an integer flag that must be at least 1.
pub fn positive_int_flag<T>(
    iter: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, CmdError>
where
    T: std::str::FromStr + PartialEq,
{
    let v: T = int_flag(iter, flag)?;
    if "0".parse::<T>().map(|zero| v == zero).unwrap_or(false) {
        return Err(CmdError::Usage(format!("{flag} must be at least 1")));
    }
    Ok(v)
}

/// Exactly one positional argument, no flags.
pub fn one_positional<'a>(args: &'a [String], what: &str) -> Result<&'a str, CmdError> {
    match args {
        [only] => Ok(only.as_str()),
        [] => Err(CmdError::Usage(format!("missing {what}"))),
        _ => Err(CmdError::Usage(format!("expected exactly one {what}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_requires_a_value() {
        let args = strings(&["0.5"]);
        let mut iter = args.iter();
        assert_eq!(flag_value(&mut iter, "--reads").unwrap(), "0.5");
        assert!(matches!(
            flag_value(&mut iter, "--reads"),
            Err(CmdError::Usage(_))
        ));
    }

    #[test]
    fn fractions_are_range_checked() {
        for bad in ["1.5", "-0.1", "NaN", "inf", "abc"] {
            let args = strings(&[bad]);
            let mut iter = args.iter();
            assert!(
                matches!(fraction_flag(&mut iter, "--reads"), Err(CmdError::Usage(_))),
                "{bad} must be rejected"
            );
        }
        let args = strings(&["0.75"]);
        let mut iter = args.iter();
        assert_eq!(fraction_flag(&mut iter, "--reads").unwrap(), 0.75);
    }

    #[test]
    fn integers_reject_floats_and_zero_where_required() {
        let args = strings(&["5000.5"]);
        let mut iter = args.iter();
        assert!(matches!(
            int_flag::<u64>(&mut iter, "--accesses"),
            Err(CmdError::Usage(_))
        ));
        let args = strings(&["0"]);
        let mut iter = args.iter();
        assert!(matches!(
            positive_int_flag::<u32>(&mut iter, "--chunk"),
            Err(CmdError::Usage(_))
        ));
        let args = strings(&["4"]);
        let mut iter = args.iter();
        assert_eq!(positive_int_flag::<usize>(&mut iter, "--jobs").unwrap(), 4);
    }

    #[test]
    fn one_positional_is_exact() {
        assert_eq!(
            one_positional(&strings(&["x.ctr"]), "file").unwrap(),
            "x.ctr"
        );
        assert!(one_positional(&strings(&[]), "file").is_err());
        assert!(one_positional(&strings(&["a", "b"]), "file").is_err());
    }
}

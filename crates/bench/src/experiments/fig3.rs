//! Fig. 3 (headline, from the abstract): per-benchmark D-Cache dynamic
//! energy, baseline CNFET cache vs CNT-Cache with adaptive encoding.
//!
//! The paper reports a 22.2 % average reduction; the expected band for
//! this reproduction is 15–30 % with the shape "sparse/read-heavy kernels
//! win big, dense/adversarial kernels lose a little metadata overhead".

use std::fmt::Write as _;

use cnt_cache::{ComparisonRow, EncodingPolicy};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// Per-kernel comparison rows for a given workload list.
pub fn data(workloads: &[Workload]) -> Vec<ComparisonRow> {
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    run_dcache_matrix(workloads, &policies)
        .iter()
        .zip(workloads)
        .map(|(reports, w)| ComparisonRow::new(w.name.clone(), &reports[0], &reports[1]))
        .collect()
}

/// Regenerates the headline figure on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "D-Cache dynamic energy: baseline CNFET vs CNT-Cache (adaptive, W=15, P=8).\n\
         Paper: 22.2% average reduction.\n"
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>14} | {:>14} | {:>8} |",
        "benchmark", "baseline (fJ)", "CNT-Cache (fJ)", "saving"
    );
    let rows = data(&cnt_workloads::suite());
    for row in &rows {
        let _ = writeln!(out, "{row}");
    }
    let savings: Vec<f64> = rows.iter().map(|r| r.saving_percent).collect();
    let _ = writeln!(
        out,
        "\naverage saving: {:.2}% (paper: 22.2%)",
        mean(&savings)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_reproduces_the_shape() {
        let rows = data(&cnt_workloads::suite_small());
        let savings: Vec<f64> = rows.iter().map(|r| r.saving_percent).collect();
        let avg = mean(&savings);
        assert!(
            (5.0..40.0).contains(&avg),
            "average saving {avg:.1}% out of the plausible band"
        );
        // Sparse read-heavy kernels must be the big winners.
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.label == n)
                .unwrap_or_else(|| panic!("missing {n}"))
                .saving_percent
        };
        assert!(by_name("matmul") > 30.0);
        assert!(by_name("fir") > 30.0);
        // Dense random data cannot win; it must only lose a bounded
        // metadata overhead.
        assert!(by_name("hash_mix") < 5.0);
        assert!(by_name("hash_mix") > -15.0);
    }
}

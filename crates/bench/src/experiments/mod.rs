//! One module per reproduced table/figure. See `DESIGN.md` §5 for the
//! index and `EXPERIMENTS.md` for recorded outcomes.

mod calibrate;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig13b;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

pub use calibrate::calibrate;

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig13b", "fig14", "fig15", "fig16", "table2", "table3", "table4", "table5",
    "table6",
];

/// Whether `id` names an experiment [`run`] can dispatch (this includes
/// the hidden `calibrate` id, which `ALL` deliberately omits).
#[must_use]
pub fn is_known(id: &str) -> bool {
    id == "calibrate" || ALL.contains(&id)
}

/// Runs one experiment by id, returning its rendered report.
///
/// The whole experiment executes inside an observability scope named
/// after the id, so snapshot streams from `--metrics-out` carry replay
/// ids like `fig9/i0003/r0000` (see `cnt_obs::scope`).
///
/// # Errors
///
/// Returns the unknown id back as an error.
pub fn run(id: &str) -> Result<String, String> {
    let _scope = cnt_obs::scoped(id);
    match id {
        "table1" => Ok(table1::run()),
        "fig2" => Ok(fig2::run()),
        "fig3" => Ok(fig3::run()),
        "fig4" => Ok(fig4::run()),
        "fig5" => Ok(fig5::run()),
        "fig6" => Ok(fig6::run()),
        "fig7" => Ok(fig7::run()),
        "fig8" => Ok(fig8::run()),
        "fig9" => Ok(fig9::run()),
        "fig10" => Ok(fig10::run()),
        "fig11" => Ok(fig11::run()),
        "fig12" => Ok(fig12::run()),
        "fig13" => Ok(fig13::run()),
        "fig13b" => Ok(fig13b::run()),
        "fig14" => Ok(fig14::run()),
        "fig15" => Ok(fig15::run()),
        "fig16" => Ok(fig16::run()),
        "table2" => Ok(table2::run()),
        "table3" => Ok(table3::run()),
        "table4" => Ok(table4::run()),
        "table5" => Ok(table5::run()),
        "table6" => Ok(table6::run()),
        "calibrate" => Ok(calibrate()),
        other => Err(format!("unknown experiment id `{other}`")),
    }
}

/// Runs several experiments on the shared thread pool, returning their
/// reports **in submission order** (compute in parallel, print in order).
///
/// Every experiment is a deterministic function of its id, so the output
/// is byte-identical to calling [`run`] in a sequential loop; only
/// wall-clock time depends on the `--jobs` setting (see [`crate::pool`]).
pub fn run_many(ids: &[&str]) -> Vec<Result<String, String>> {
    crate::pool::par_map(ids, |id| run(id))
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_ids_dispatch() {
        for id in super::ALL {
            // Only check dispatch wiring here (cheap ids); heavy
            // experiments have their own shape tests on the small suite.
            assert!(
                super::run("definitely-not-an-id").is_err(),
                "unknown ids must error"
            );
            assert!(super::ALL.contains(id));
        }
    }
}

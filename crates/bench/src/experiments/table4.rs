//! Table 4 (extension): the oracle lower bound.
//!
//! For each array event, an omniscient encoder could store the touched
//! region in whichever direction is cheaper *for that event*, with free
//! switches and no metadata. Charging `min(cost(bits), cost(~bits))` per
//! event therefore lower-bounds every inversion-coding scheme. The ratio
//! `achieved / oracle-available saving` is the predictor's efficiency.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_energy::{BitEnergies, Energy};
use cnt_sim::{
    Address, ArrayObserver, Cache, CacheGeometry, LineLocation, MainMemory, ReplacementKind,
};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache};

/// Accumulates the per-event oracle minimum at 64-bit granularity.
struct OracleMeter {
    bits: BitEnergies,
    total: Energy,
}

impl OracleMeter {
    fn new() -> Self {
        OracleMeter {
            bits: BitEnergies::cnfet_default(),
            total: Energy::ZERO,
        }
    }

    fn oracle_read(&mut self, word: u64) {
        let ones = word.count_ones();
        self.total += self
            .bits
            .read_bits(ones, 64)
            .min(self.bits.read_bits(64 - ones, 64));
    }

    fn oracle_write(&mut self, word: u64) {
        let ones = word.count_ones();
        self.total += self
            .bits
            .write_bits(ones, 64)
            .min(self.bits.write_bits(64 - ones, 64));
    }
}

impl ArrayObserver for OracleMeter {
    fn word_read(&mut self, _: LineLocation, _: usize, value: u64) {
        self.oracle_read(value);
    }
    fn word_written(&mut self, _: LineLocation, _: usize, _: u64, new: u64) {
        self.oracle_write(new);
    }
    fn line_filled(&mut self, _: LineLocation, _: Address, data: &[u64]) {
        for &w in data {
            self.oracle_write(w);
        }
    }
    fn line_evicted(&mut self, _: LineLocation, _: Address, data: &[u64], dirty: bool) {
        if dirty {
            for &w in data {
                self.oracle_read(w);
            }
        }
    }
}

/// Oracle total for one trace under the D-Cache geometry.
pub fn oracle_total(trace: &cnt_sim::trace::Trace) -> Energy {
    let geometry = CacheGeometry::new(32 * 1024, 64, 8).expect("static geometry");
    let mut cache = Cache::new("oracle", geometry, ReplacementKind::Lru);
    let mut mem = MainMemory::new();
    let mut oracle = OracleMeter::new();
    for access in trace {
        if access.is_write() {
            cache
                .write(
                    access.addr,
                    access.width,
                    access.value,
                    &mut mem,
                    &mut oracle,
                )
                .expect("trace is well-formed");
        } else {
            cache
                .read(access.addr, access.width, &mut mem, &mut oracle)
                .expect("trace is well-formed");
        }
    }
    cache.flush(&mut mem, &mut oracle);
    oracle.total
}

/// `(name, oracle_saving, achieved_saving, efficiency)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(String, f64, f64, f64)> {
    crate::pool::par_map(workloads, |w| {
        let base = run_dcache(EncodingPolicy::None, &w.trace);
        let cnt = run_dcache(EncodingPolicy::adaptive_default(), &w.trace);
        let oracle = oracle_total(&w.trace);
        let base_fj = base.total().femtojoules();
        let oracle_saving = (base_fj - oracle.femtojoules()) / base_fj * 100.0;
        let achieved = cnt.saving_vs(&base);
        let efficiency = if oracle_saving > 0.0 {
            achieved / oracle_saving
        } else {
            0.0
        };
        (w.name.clone(), oracle_saving, achieved, efficiency)
    })
}

/// Regenerates the oracle-bound table on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Oracle lower bound: per-event optimal direction, free switches,\n\
         no metadata (an unachievable bound for any real predictor):\n"
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>13} | {:>15} | {:>10} |",
        "benchmark", "oracle saving", "achieved saving", "efficiency"
    );
    let rows = data(&cnt_workloads::suite());
    let mut efficiencies = Vec::new();
    for (name, oracle, achieved, eff) in &rows {
        efficiencies.push(*eff);
        let _ = writeln!(
            out,
            "| {name:<16} | {oracle:>12.2}% | {achieved:>14.2}% | {:>9.1}% |",
            eff * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nmean predictor efficiency: {:.1}%",
        mean(&efficiencies) * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_bounds_the_achieved_saving() {
        for (name, oracle, achieved, eff) in data(&cnt_workloads::suite_small()) {
            assert!(
                achieved <= oracle + 1e-6,
                "{name}: achieved {achieved:.1}% exceeds the oracle bound {oracle:.1}%"
            );
            assert!(oracle >= 0.0, "{name}: oracle can never lose");
            assert!(eff <= 1.0 + 1e-9, "{name}: efficiency {eff}");
        }
    }

    #[test]
    fn predictor_captures_a_real_fraction_on_winners() {
        let rows = data(&cnt_workloads::suite_small());
        let matmul = rows.iter().find(|(n, ..)| n == "matmul").expect("present");
        assert!(
            matmul.3 > 0.5,
            "matmul efficiency {:.2} — the predictor should capture most of the bound",
            matmul.3
        );
    }
}

//! Fig. 16 (extension): inversion coding vs zero-flag compression.
//!
//! Zero-flag compression ("dynamic zero compression"-style: a per-word
//! flag bit lets all-zero words skip the array entirely) is the classic
//! related-work alternative to value-inversion coding. The two exploit
//! different structure: zero-flagging needs *exactly-zero words*;
//! inversion needs any *skewed bit density* and adapts its direction to
//! the read/write mix. This experiment runs both (and the paper's
//! adaptive scheme) head-to-head.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix, run_dcache_set};

/// Per-kernel savings under both schemes: `(name, zero_flag, adaptive)`.
pub fn data(workloads: &[Workload]) -> Vec<(String, f64, f64)> {
    let policies = [
        EncodingPolicy::None,
        EncodingPolicy::ZeroFlag,
        EncodingPolicy::adaptive_default(),
    ];
    run_dcache_matrix(workloads, &policies)
        .iter()
        .zip(workloads)
        .map(|(r, w)| (w.name.clone(), r[1].saving_vs(&r[0]), r[2].saving_vs(&r[0])))
        .collect()
}

/// The discriminating synthetic case: low-but-nonzero bit density. Every
/// word carries a few one bits, so zero-flagging never fires while
/// inversion converts the lines to cheap stored ones.
pub fn sparse_nonzero_savings(accesses: usize) -> (f64, f64) {
    let trace = SyntheticSpec {
        accesses,
        footprint_lines: 128,
        read_fraction: 0.9,
        ones_density: 0.10, // every 64-bit word has ~6 one bits: never zero
        pattern: AddressPattern::UniformRandom,
        seed: 0x2E60,
    }
    .generate();
    let reports = run_dcache_set(
        &[
            EncodingPolicy::None,
            EncodingPolicy::ZeroFlag,
            EncodingPolicy::adaptive_default(),
        ],
        &trace,
    );
    (
        reports[1].saving_vs(&reports[0]),
        reports[2].saving_vs(&reports[0]),
    )
}

/// Regenerates the scheme comparison on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Inversion coding vs zero-flag compression (savings vs baseline):\n"
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>11} | {:>11} |",
        "benchmark", "zero-flag", "CNT-Cache"
    );
    let rows = data(&cnt_workloads::suite());
    let mut flag_all = Vec::new();
    let mut adaptive_all = Vec::new();
    for (name, flag, adaptive) in &rows {
        flag_all.push(*flag);
        adaptive_all.push(*adaptive);
        let _ = writeln!(out, "| {name:<16} | {flag:>10.2}% | {adaptive:>10.2}% |");
    }
    let _ = writeln!(
        out,
        "| {:<16} | {:>10.2}% | {:>10.2}% |",
        "MEAN",
        mean(&flag_all),
        mean(&adaptive_all)
    );
    let (flag, adaptive) = sparse_nonzero_savings(40_000);
    let _ = writeln!(
        out,
        "\nThe discriminating case — 10%-density data (sparse but never\n\
         exactly zero), 90% reads: zero-flag {flag:.2}% vs CNT-Cache {adaptive:.2}%.\n\
         Zero-flagging needs zero *words*; inversion only needs skew."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_win_on_their_own_turf() {
        // Sparse-but-nonzero data: inversion wins, zero-flag does nothing.
        let (flag, adaptive) = sparse_nonzero_savings(8_000);
        assert!(
            flag.abs() < 3.0,
            "zero-flag should be near-neutral on nonzero data, got {flag:.1}%"
        );
        assert!(
            adaptive > 20.0,
            "inversion should win on sparse reads, got {adaptive:.1}%"
        );
    }

    #[test]
    fn schemes_are_complementary() {
        // pointer_chase lines hold one pointer word and seven zero words,
        // and are evicted before any prediction window completes: the
        // blind spot of window-based inversion is zero-flag's best case.
        let rows = data(&cnt_workloads::suite_small());
        let chase = rows
            .iter()
            .find(|(n, ..)| n == "pointer_chase")
            .expect("present");
        assert!(
            chase.1 > 30.0,
            "pointer_chase zero-flag saving {:.1}% unexpectedly low",
            chase.1
        );
        assert!(
            chase.2 < 5.0,
            "pointer_chase inversion saving {:.1}% should be near zero",
            chase.2
        );
        // Conversely matmul's packed 32-bit cells rarely form zero words:
        // inversion wins, zero-flag idles.
        let matmul = rows.iter().find(|(n, ..)| n == "matmul").expect("present");
        assert!(matmul.2 > 30.0);
        assert!(matmul.1 < 10.0);
    }
}

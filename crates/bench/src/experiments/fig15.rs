//! Fig. 15 (extension): where should the encoding go?
//!
//! The paper encodes the D-Cache. With every level of a split-L1/L2
//! hierarchy independently encodable, this sweeps which levels get the
//! adaptive encoder and reports whole-hierarchy dynamic energy.

use std::fmt::Write as _;

use cnt_cache::{CntHierarchy, CntHierarchyConfig, EncodingPolicy};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;
use cnt_workloads::synthetic::word_with_density;
use cnt_workloads::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::runner::mean;

const CODE_BASE: u64 = 0x0040_0000;
const CODE_LINES: u64 = 128;

/// Interleaves one instruction fetch (looping code footprint) before each
/// data access, approximating an in-order core's pipeline traffic.
pub fn with_ifetch(data: &Trace) -> Trace {
    let mut out = Trace::new();
    for (i, access) in data.iter().enumerate() {
        let pc = CODE_BASE + (i as u64 % (CODE_LINES * 8)) * 8;
        out.push(MemoryAccess::ifetch(Address::new(pc)));
        out.push(*access);
    }
    out
}

/// Loads realistic instruction words (≈30 % one-bits, like RISC
/// encodings) into the code footprint, untraced — the program loader.
fn load_code(h: &mut CntHierarchy) {
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    for word in 0..CODE_LINES * 8 {
        h.memory_mut().store(
            Address::new(CODE_BASE + word * 8),
            8,
            word_with_density(&mut rng, 0.30),
        );
    }
}

/// The encoding placements swept: (label, l1i, l1d, l2).
pub fn placements() -> Vec<(&'static str, EncodingPolicy, EncodingPolicy, EncodingPolicy)> {
    let adaptive = EncodingPolicy::adaptive_default();
    let none = EncodingPolicy::None;
    vec![
        ("none (baseline)", none, none, none),
        ("L1D only (paper)", none, adaptive, none),
        ("L1I + L1D", adaptive, adaptive, none),
        ("L2 only", none, none, adaptive),
        ("all levels", adaptive, adaptive, adaptive),
    ]
}

fn total_energy(
    trace: &Trace,
    l1i: EncodingPolicy,
    l1d: EncodingPolicy,
    l2: EncodingPolicy,
) -> f64 {
    let config = CntHierarchyConfig::typical(l1i, l1d, l2).expect("static geometries");
    let mut h = CntHierarchy::new(config).expect("valid hierarchy");
    load_code(&mut h);
    // Observed replay: with `--metrics-out` installed this emits one
    // multi-level (L1I/L1D/L2) snapshot per epoch; without a sink it is
    // the same plain loop as `h.run`.
    cnt_obs::replay_hierarchy(&mut h, trace).expect("trace runs");
    h.flush_all();
    h.total_energy().femtojoules()
}

/// Mean whole-hierarchy saving per placement over a workload list.
pub fn data(workloads: &[Workload]) -> Vec<(&'static str, f64)> {
    let traces: Vec<Trace> = workloads.iter().map(|w| with_ifetch(&w.trace)).collect();
    let baselines: Vec<f64> = traces
        .iter()
        .map(|t| {
            total_energy(
                t,
                EncodingPolicy::None,
                EncodingPolicy::None,
                EncodingPolicy::None,
            )
        })
        .collect();
    placements()
        .into_iter()
        .map(|(label, l1i, l1d, l2)| {
            let savings: Vec<f64> = traces
                .iter()
                .zip(&baselines)
                .map(|(t, &base)| (base - total_energy(t, l1i, l1d, l2)) / base * 100.0)
                .collect();
            (label, mean(&savings))
        })
        .collect()
}

/// Regenerates the placement study on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Encoding placement across a 16K-L1I / 32K-L1D / 256K-L2 hierarchy\n\
         (suite kernels with an interleaved looping instruction stream;\n\
         whole-hierarchy dynamic energy vs the all-baseline hierarchy):\n"
    );
    let _ = writeln!(out, "| {:<18} | {:>12} |", "encoded levels", "mean saving");
    for (label, saving) in data(&cnt_workloads::suite()) {
        let _ = writeln!(out, "| {label:<18} | {saving:>11.2}% |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_ordering_is_sane() {
        // Repeat each small trace so I-cache lines live through several
        // prediction windows (single-window lines cannot amortize their
        // encoding switch and would make this shape test flaky).
        let workloads: Vec<cnt_workloads::Workload> = cnt_workloads::suite_small()[..4]
            .iter()
            .map(|w| {
                let mut trace = Trace::new();
                for _ in 0..4 {
                    trace.extend(w.trace.iter().copied());
                }
                cnt_workloads::Workload::new(w.name.clone(), w.description.clone(), trace)
            })
            .collect();
        let rows = data(&workloads);
        let at = |label: &str| {
            rows.iter()
                .find(|(l, _)| *l == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .1
        };
        assert!(at("none (baseline)").abs() < 1e-9, "baseline saves nothing");
        assert!(
            at("L1D only (paper)") > 0.0,
            "the paper's placement must save"
        );
        // On these short test traces each I-cache line completes barely
        // one window, so its switch cost is not amortized; allow a small
        // regression here (the full-suite run shows the I-side winning
        // big — see EXPERIMENTS.md).
        assert!(
            at("L1I + L1D") >= at("L1D only (paper)") - 4.0,
            "adding the I-side regressed too far: {:.2} vs {:.2}",
            at("L1I + L1D"),
            at("L1D only (paper)")
        );
        assert!(
            at("all levels") >= at("L1I + L1D") - 2.0,
            "adding the L2 should be near-neutral: {:.2} vs {:.2}",
            at("all levels"),
            at("L1I + L1D")
        );
    }
}

//! Fig. 5: sensitivity to the partition count `P`.
//!
//! Finer partitions store strictly more preferred bits (Fig. 2) but cost
//! one direction bit each; the benefit saturates while the overhead grows
//! linearly.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_workloads::synthetic::StripedSpec;
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix, run_dcache_set};

/// The swept partition counts.
pub const PARTITIONS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// A heterogeneous "record stream": lines interleave four sparse words
/// (ids/flags, 5 % ones) with four dense words (hashes, 75 % ones). No
/// single inversion direction suits such a line — the Fig. 2 case.
pub fn record_stream(accesses: usize) -> cnt_sim::trace::Trace {
    StripedSpec {
        accesses,
        footprint_lines: 128,
        read_fraction: 0.9,
        densities: [0.05, 0.75, 0.05, 0.75, 0.05, 0.75, 0.05, 0.75],
        seed: 0x5712,
    }
    .generate()
}

/// The swept policies, preceded by the un-encoded baseline.
fn swept_policies() -> Vec<EncodingPolicy> {
    let mut policies = vec![EncodingPolicy::None];
    policies.extend(PARTITIONS.iter().map(|&partitions| {
        EncodingPolicy::Adaptive(AdaptiveParams {
            partitions,
            ..AdaptiveParams::paper_default()
        })
    }));
    policies
}

/// Saving per partition count on the heterogeneous record stream.
pub fn record_data(accesses: usize) -> Vec<(u32, f64)> {
    let trace = record_stream(accesses);
    let reports = run_dcache_set(&swept_policies(), &trace);
    PARTITIONS
        .iter()
        .enumerate()
        .map(|(i, &partitions)| (partitions, reports[i + 1].saving_vs(&reports[0])))
        .collect()
}

/// Mean suite saving and H&D bits per line, per partition count.
pub fn data(workloads: &[Workload]) -> Vec<(u32, f64, u32)> {
    let policies = swept_policies();
    let matrix = run_dcache_matrix(workloads, &policies);
    PARTITIONS
        .iter()
        .enumerate()
        .map(|(i, &partitions)| {
            let savings: Vec<f64> = matrix
                .iter()
                .map(|reports| reports[i + 1].saving_vs(&reports[0]))
                .collect();
            (
                partitions,
                mean(&savings),
                policies[i + 1].metadata_bits_per_line(512),
            )
        })
        .collect()
}

/// Regenerates the partition-sensitivity figure on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Partition-count sensitivity (suite mean, W=15, ΔT=0.1):\n"
    );
    let _ = writeln!(
        out,
        "| {:>4} | {:>12} | {:>14} |",
        "P", "mean saving", "H&D bits/line"
    );
    for (partitions, saving, bits) in data(&cnt_workloads::suite()) {
        let _ = writeln!(out, "| {partitions:>4} | {saving:>11.2}% | {bits:>14} |");
    }
    let _ = writeln!(
        out,
        "\nThe suite's lines are mostly homogeneous, so full-line encoding\n\
         already captures the gain. On heterogeneous lines (sparse ids\n\
         interleaved with dense hashes — the Fig. 2 case) partitioning is\n\
         what unlocks the saving:\n"
    );
    let _ = writeln!(out, "| {:>4} | {:>20} |", "P", "record-stream saving");
    for (partitions, saving) in record_data(60_000) {
        let _ = writeln!(out, "| {partitions:>4} | {saving:>19.2}% |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_partitioning_is_competitive_with_full_line() {
        // On homogeneous-line kernels the two are within a few percent;
        // the partitioned advantage shows on heterogeneous lines (below).
        let rows = data(&cnt_workloads::suite_small());
        assert_eq!(rows.len(), PARTITIONS.len());
        let full_line = rows[0].1;
        let partitioned = rows[3].1; // P = 8, the default
        assert!(
            (partitioned - full_line).abs() < 5.0,
            "P=8 ({partitioned:.1}%) strayed from P=1 ({full_line:.1}%)"
        );
        // Metadata grows linearly in P.
        assert_eq!(rows[0].2 + 31, rows[5].2);
    }

    #[test]
    fn partitioning_wins_on_heterogeneous_lines() {
        let rows = record_data(8_000);
        let at = |p: u32| rows.iter().find(|(q, _)| *q == p).expect("swept").1;
        assert!(
            at(8) > at(1) + 3.0,
            "P=8 ({:.1}%) must clearly beat P=1 ({:.1}%) on striped records",
            at(8),
            at(1)
        );
    }
}

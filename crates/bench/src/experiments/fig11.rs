//! Fig. 11 (extension): deferred-update FIFO sizing and drain rate.
//!
//! The paper's FIFOs exist so re-encodes never stall the demand path; the
//! open question is how much capacity and drain bandwidth they need. The
//! answer on this suite: almost none — one slot drained once per idle hit
//! already applies every update.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// Swept FIFO capacities.
pub const CAPACITIES: [usize; 3] = [1, 8, 32];
/// Swept drain rates (updates applied per idle slot). `0` = only at the
/// final flush.
pub const DRAINS: [usize; 3] = [0, 1, 4];

/// `(capacity, drain, mean_saving, dropped, applied)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(usize, usize, f64, u64, u64)> {
    let combos: Vec<(usize, usize)> = CAPACITIES
        .iter()
        .flat_map(|&c| DRAINS.iter().map(move |&d| (c, d)))
        .collect();
    let mut policies = vec![EncodingPolicy::None];
    policies.extend(combos.iter().map(|&(fifo_capacity, drain_per_access)| {
        EncodingPolicy::Adaptive(AdaptiveParams {
            fifo_capacity,
            drain_per_access,
            ..AdaptiveParams::paper_default()
        })
    }));
    let matrix = run_dcache_matrix(workloads, &policies);
    combos
        .iter()
        .enumerate()
        .map(|(i, &(fifo_capacity, drain_per_access))| {
            let mut savings = Vec::new();
            let mut dropped = 0;
            let mut applied = 0;
            for reports in &matrix {
                let cnt = &reports[i + 1];
                savings.push(cnt.saving_vs(&reports[0]));
                dropped += cnt.fifo.dropped;
                applied += cnt.encoding.switches_applied;
            }
            (
                fifo_capacity,
                drain_per_access,
                mean(&savings),
                dropped,
                applied,
            )
        })
        .collect()
}

/// Regenerates the FIFO-sizing study on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Update-FIFO sizing (suite mean, W=15, P=8, ΔT=0.1):\n");
    let _ = writeln!(
        out,
        "| {:>8} | {:>5} | {:>12} | {:>8} | {:>8} |",
        "capacity", "drain", "mean saving", "dropped", "applied"
    );
    for (capacity, drain, saving, dropped, applied) in data(&cnt_workloads::suite()) {
        let _ = writeln!(
            out,
            "| {capacity:>8} | {drain:>5} | {saving:>11.2}% | {dropped:>8} | {applied:>8} |"
        );
    }
    let _ = writeln!(
        out,
        "\nDrain 0 defers every re-encode to the final flush: lines keep\n\
         their stale encoding for the whole run and capacity-1 FIFOs drop\n\
         most updates — both cost real energy. Any non-zero drain rate\n\
         with a small FIFO recovers the full benefit."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draining_matters_capacity_barely() {
        let rows = data(&cnt_workloads::suite_small());
        let at = |c: usize, d: usize| {
            rows.iter()
                .find(|(rc, rd, ..)| *rc == c && *rd == d)
                .expect("swept")
        };
        // No draining hurts vs draining, at every capacity.
        assert!(at(8, 1).2 > at(8, 0).2, "drain=1 must beat drain=0");
        // With drain >= 1, capacity 1 vs 32 is within noise.
        let small = at(1, 1).2;
        let large = at(32, 1).2;
        assert!(
            (small - large).abs() < 3.0,
            "capacity shouldn't matter with draining: {small:.1}% vs {large:.1}%"
        );
        // Zero-drain small FIFOs drop updates.
        assert!(at(1, 0).3 > 0, "capacity-1 no-drain must drop updates");
    }
}

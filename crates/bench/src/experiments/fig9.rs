//! Fig. 9: D-Cache vs I-Cache benefit.
//!
//! The abstract singles out the *D-Cache* as the optimized target. The
//! I-Cache side is modeled with a code-fetch surrogate trace: sequential
//! fetch with loop reuse over read-only lines whose words have the sparse
//! bit density of RISC instruction encodings (~30 % ones). Instruction
//! lines are never written, so every window is read-intensive and the
//! encoder converges once per line — a favorable but write-free profile.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix, run_dcache_set};

/// A code-fetch surrogate: loop-reused sequential fetches over
/// 30 %-density instruction words (the init writes model program load).
pub fn icache_trace(accesses: usize) -> cnt_sim::trace::Trace {
    SyntheticSpec {
        accesses,
        footprint_lines: 96,
        read_fraction: 1.0,
        ones_density: 0.30,
        pattern: AddressPattern::Sequential,
        seed: 0x1CAC4E,
    }
    .generate()
}

/// `(dcache_mean_saving, icache_saving)` for a given suite size.
pub fn data(workloads: &[Workload], icache_accesses: usize) -> (f64, f64) {
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    let d: Vec<f64> = run_dcache_matrix(workloads, &policies)
        .iter()
        .map(|reports| reports[1].saving_vs(&reports[0]))
        .collect();
    let itrace = icache_trace(icache_accesses);
    let ireports = run_dcache_set(&policies, &itrace);
    (mean(&d), ireports[1].saving_vs(&ireports[0]))
}

/// Regenerates the D-vs-I comparison.
pub fn run() -> String {
    let mut out = String::new();
    let (d, i) = data(&cnt_workloads::suite(), 100_000);
    let _ = writeln!(out, "Adaptive-encoding benefit by cache side:\n");
    let _ = writeln!(out, "| {:<8} | {:>12} |", "cache", "mean saving");
    let _ = writeln!(out, "| {:<8} | {:>11.2}% |", "L1D", d);
    let _ = writeln!(out, "| {:<8} | {:>11.2}% |", "L1I", i);
    let _ = writeln!(
        out,
        "\nBoth sides benefit; the I-side gain comes purely from the\n\
         read-path asymmetry since code lines are never re-written."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_save() {
        let (d, i) = data(&cnt_workloads::suite_small(), 10_000);
        assert!(d > 0.0, "D-side lost: {d:.1}%");
        assert!(i > 0.0, "I-side lost: {i:.1}%");
        // Sparse read-only code is close to the best case for the encoder.
        assert!(i > 15.0, "I-side should save substantially, got {i:.1}%");
    }
}

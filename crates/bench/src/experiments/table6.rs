//! Table 6 (extension): seed robustness of the headline result.
//!
//! A reproduction whose numbers move with the RNG seed proves nothing;
//! this re-runs the suite under several seeds and reports the spread of
//! the mean saving and of each seeded kernel.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_workloads::suite_seeded;

use crate::runner::{mean, run_dcache_matrix};

/// The seeds swept.
pub const SEEDS: [u64; 5] = [0xC47, 1, 42, 0xDEAD, 0xBEEF];

/// Mean suite saving per seed.
pub fn data(seeds: &[u64]) -> Vec<(u64, f64)> {
    let policies = [EncodingPolicy::None, EncodingPolicy::adaptive_default()];
    seeds
        .iter()
        .map(|&seed| {
            let savings: Vec<f64> = run_dcache_matrix(&suite_seeded(seed), &policies)
                .iter()
                .map(|r| r[1].saving_vs(&r[0]))
                .collect();
            (seed, mean(&savings))
        })
        .collect()
}

/// Regenerates the seed-robustness table.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Seed robustness of the suite-average saving:\n");
    let _ = writeln!(out, "| {:>8} | {:>12} |", "seed", "mean saving");
    let rows = data(&SEEDS);
    let mut all = Vec::new();
    for (seed, saving) in &rows {
        all.push(*saving);
        let _ = writeln!(out, "| {seed:>#8x} | {saving:>11.2}% |");
    }
    let min = all.iter().cloned().fold(f64::MAX, f64::min);
    let max = all.iter().cloned().fold(f64::MIN, f64::max);
    let _ = writeln!(
        out,
        "\nmean {:.2}%, spread [{:.2}%, {:.2}%] over {} seeds — the headline\n\
         is a property of the workload *structure*, not of a lucky seed",
        mean(&all),
        min,
        max,
        SEEDS.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dcache;
    use cnt_workloads::suite_small;

    #[test]
    fn seeds_do_not_move_the_needle_much() {
        // Small-suite spot check over two seeds using the seeded kernels
        // directly (the full sweep runs in release via the harness).
        let run_suite = |_seed: u64| {
            let savings: Vec<f64> = suite_small()
                .iter()
                .map(|w| {
                    let base = run_dcache(EncodingPolicy::None, &w.trace);
                    run_dcache(EncodingPolicy::adaptive_default(), &w.trace).saving_vs(&base)
                })
                .collect();
            mean(&savings)
        };
        let a = run_suite(1);
        let b = run_suite(2);
        // Identical traces -> identical results (determinism check).
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn seeded_suites_differ_but_agree_on_average() {
        let rows = data(&[1, 2]);
        let spread = (rows[0].1 - rows[1].1).abs();
        assert!(spread < 6.0, "seed spread {spread:.1}% too wide");
    }
}

//! Fig. 12 (extension): write-policy interaction.
//!
//! Under write-through, stores reach memory immediately and lines stay
//! clean, so the cache-array write mix and the writeback traffic both
//! change — does adaptive encoding still pay? (Main-memory energy is out
//! of scope; only the cache array is metered, which *flatters*
//! write-through — noted in the report.)

use std::fmt::Write as _;

use cnt_cache::{CntCacheConfig, EncodingPolicy};
use cnt_sim::WriteMode;
use cnt_workloads::Workload;

use crate::runner::{mean, run_trace};

/// The swept write modes.
pub const MODES: [WriteMode; 3] = [
    WriteMode::WriteBack,
    WriteMode::WriteThrough,
    WriteMode::WriteThroughNoAllocate,
];

fn config(mode: WriteMode, policy: EncodingPolicy) -> CntCacheConfig {
    CntCacheConfig::builder()
        .write_mode(mode)
        .policy(policy)
        .build()
        .expect("static geometry is valid")
}

/// `(mode, baseline_fj_mean, saving_mean)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(WriteMode, f64, f64)> {
    MODES
        .iter()
        .map(|&mode| {
            let pairs = crate::pool::par_map(workloads, |w| {
                let base = run_trace(config(mode, EncodingPolicy::None), &w.trace);
                let cnt = run_trace(config(mode, EncodingPolicy::adaptive_default()), &w.trace);
                (base.total().femtojoules(), cnt.saving_vs(&base))
            });
            let baselines: Vec<f64> = pairs.iter().map(|&(b, _)| b).collect();
            let savings: Vec<f64> = pairs.iter().map(|&(_, s)| s).collect();
            (mode, mean(&baselines), mean(&savings))
        })
        .collect()
}

/// Regenerates the write-policy study on the extended suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Write-policy interaction (extended suite; cache-array energy only,\n\
         which flatters write-through since its extra memory writes are\n\
         not metered):\n"
    );
    let _ = writeln!(
        out,
        "| {:<26} | {:>18} | {:>12} |",
        "write mode", "baseline mean (fJ)", "mean saving"
    );
    for (mode, baseline, saving) in data(&cnt_workloads::suite_extended()) {
        let _ = writeln!(
            out,
            "| {:<26} | {baseline:>18.1} | {saving:>11.2}% |",
            mode.to_string()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_pays_under_every_write_mode() {
        for (mode, _, saving) in data(&cnt_workloads::suite_small()) {
            assert!(
                saving > 0.0,
                "{mode}: adaptive encoding lost energy ({saving:.1}%)"
            );
        }
    }
}

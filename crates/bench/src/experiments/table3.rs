//! Table 3: CNFET vs CMOS absolute dynamic energy — the motivation for
//! CNFET caches in the first place.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_energy::SramEnergyModel;
use cnt_workloads::Workload;

use crate::runner::{geometric_mean, run_dcache_with_model};

/// `(name, cmos_fj, cnfet_fj, cnfet_cnt_fj)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(String, f64, f64, f64)> {
    crate::pool::par_map(workloads, |w| {
        let cmos = run_dcache_with_model(
            EncodingPolicy::None,
            SramEnergyModel::cmos_default(),
            &w.trace,
        );
        let cnfet = run_dcache_with_model(
            EncodingPolicy::None,
            SramEnergyModel::cnfet_default(),
            &w.trace,
        );
        let cnt = run_dcache_with_model(
            EncodingPolicy::adaptive_default(),
            SramEnergyModel::cnfet_default(),
            &w.trace,
        );
        (
            w.name.clone(),
            cmos.total().femtojoules(),
            cnfet.total().femtojoules(),
            cnt.total().femtojoules(),
        )
    })
}

/// Regenerates the technology comparison on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Absolute dynamic energy by technology (same traces, same geometry):\n"
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>14} | {:>14} | {:>14} | {:>9} |",
        "benchmark", "CMOS (fJ)", "CNFET (fJ)", "CNT-Cache (fJ)", "CMOS/CNT"
    );
    let mut ratios = Vec::new();
    for (name, cmos, cnfet, cnt) in data(&cnt_workloads::suite()) {
        let ratio = cmos / cnt;
        ratios.push(ratio);
        let _ = writeln!(
            out,
            "| {name:<16} | {cmos:>14.1} | {cnfet:>14.1} | {cnt:>14.1} | {ratio:>8.2}x |"
        );
    }
    let _ = writeln!(
        out,
        "\ngeomean CMOS/CNT-Cache ratio: {:.2}x",
        geometric_mean(&ratios)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnfet_beats_cmos_everywhere() {
        for (name, cmos, cnfet, cnt) in data(&cnt_workloads::suite_small()) {
            assert!(cnfet < cmos, "{name}: CNFET {cnfet} vs CMOS {cmos}");
            // The combined CNFET + adaptive encoding must stay well below
            // CMOS even where encoding alone loses a little.
            assert!(cnt < cmos * 0.7, "{name}: CNT {cnt} vs CMOS {cmos}");
        }
    }
}

//! Fig. 10 (extension): the sticky pattern classifier.
//!
//! `fig8` exposes Algorithm 1's failure mode: on *balanced* read/write
//! mixes over *extreme* bit densities the window classifier alternates
//! between read- and write-intensive and the line thrashes. Requiring the
//! classification to hold for `confirm_windows` consecutive windows
//! before switching damps the oscillation; this experiment sweeps that
//! knob on the thrash cells and on the normal suite.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix, run_dcache_set};

/// The swept confirmation depths.
pub const CONFIRMS: [u32; 4] = [1, 2, 3, 4];

fn policy(confirm_windows: u32) -> EncodingPolicy {
    EncodingPolicy::Adaptive(AdaptiveParams {
        confirm_windows,
        ..AdaptiveParams::paper_default()
    })
}

/// A fig8 thrash cell: balanced mix, extreme density.
pub fn thrash_trace(accesses: usize) -> cnt_sim::trace::Trace {
    SyntheticSpec {
        accesses,
        footprint_lines: 128,
        read_fraction: 0.5,
        ones_density: 0.95,
        pattern: AddressPattern::UniformRandom,
        seed: 0xF18,
    }
    .generate()
}

/// `(confirm, thrash_saving, thrash_switches, suite_saving)` rows.
pub fn data(workloads: &[Workload], thrash_accesses: usize) -> Vec<(u32, f64, u64, f64)> {
    let thrash = thrash_trace(thrash_accesses);
    let mut policies = vec![EncodingPolicy::None];
    policies.extend(CONFIRMS.iter().map(|&confirm| policy(confirm)));
    let thrash_reports = run_dcache_set(&policies, &thrash);
    let matrix = run_dcache_matrix(workloads, &policies);
    CONFIRMS
        .iter()
        .enumerate()
        .map(|(i, &confirm)| {
            let t = &thrash_reports[i + 1];
            let suite: Vec<f64> = matrix
                .iter()
                .map(|reports| reports[i + 1].saving_vs(&reports[0]))
                .collect();
            (
                confirm,
                t.saving_vs(&thrash_reports[0]),
                t.encoding.switches_applied,
                mean(&suite),
            )
        })
        .collect()
}

/// Regenerates the sticky-classifier study.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sticky classifier: require N consecutive same-pattern windows\n\
         before switching. Thrash cell = 50% reads x 95% ones density.\n"
    );
    let _ = writeln!(
        out,
        "| {:>7} | {:>14} | {:>15} | {:>12} |",
        "confirm", "thrash saving", "thrash switches", "suite saving"
    );
    for (confirm, thrash_saving, switches, suite_saving) in data(&cnt_workloads::suite(), 40_000) {
        let _ = writeln!(
            out,
            "| {confirm:>7} | {thrash_saving:>13.2}% | {switches:>15} | {suite_saving:>11.2}% |"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirmation_rescues_the_thrash_cell() {
        let rows = data(&cnt_workloads::suite_small(), 8_000);
        let at = |c: u32| rows.iter().find(|(q, ..)| *q == c).expect("swept");
        let plain = at(1);
        let sticky = at(3);
        assert!(
            sticky.1 > plain.1,
            "confirm=3 thrash saving {:.1}% must beat confirm=1 {:.1}%",
            sticky.1,
            plain.1
        );
        assert!(sticky.2 < plain.2, "switches must fall");
        // A shallow confirmation keeps most of the normal-suite saving
        // (deep confirmation trades suite reactivity for thrash immunity —
        // visible in the full-suite run, drastic on this tiny suite whose
        // lines only live for a handful of windows).
        let shallow = at(2);
        assert!(
            shallow.3 > plain.3 - 6.0,
            "suite saving fell too far at confirm=2: {:.1}% -> {:.1}%",
            plain.3,
            shallow.3
        );
    }
}

//! Fig. 13 (extension): reliability — direction-bit soft errors cause
//! *silent* data corruption.
//!
//! The H&D metadata is not covered by the data array's protection: a
//! single upset direction bit makes a whole partition decode inverted,
//! and nothing detects it. This experiment injects metadata upsets
//! mid-run and measures how many architecturally-visible words end up
//! corrupted, motivating parity over the D bits as future work. The
//! baseline (no encoding) has no direction bits and is immune by
//! construction.

use std::fmt::Write as _;

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_sim::trace::Trace;
use cnt_sim::{Address, MainMemory};
use cnt_workloads::kernels;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs `trace` on an adaptive cache, injecting `faults` direction-bit
/// upsets at evenly spaced points, and returns the number of corrupted
/// 64-bit words in the final memory image.
pub fn corrupted_words(trace: &Trace, faults: usize, seed: u64) -> usize {
    // Golden image: same trace, no faults, plain replay.
    let mut golden = MainMemory::new();
    for access in trace {
        if access.is_write() {
            golden.store(access.addr, access.width, access.value);
        }
    }

    let config = CntCacheConfig::builder()
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("static geometry");
    let mut cache = CntCache::new(config).expect("valid cache");
    let mut rng = SmallRng::seed_from_u64(seed);
    let interval = (trace.len() / (faults + 1)).max(1);
    let mut injected = 0;
    for (i, access) in trace.iter().enumerate() {
        cache.access(access).expect("trace runs");
        if injected < faults && i % interval == interval - 1 {
            // Upset a random partition of a random valid line. The line
            // is picked by counted index (no per-upset allocation) and
            // the partition range comes from the cache's codec layout,
            // so non-default geometries inject valid faults too.
            let count = cache.valid_line_count();
            if count > 0 {
                let loc = cache
                    .nth_valid_line(rng.gen_range(0..count))
                    .expect("index below the valid-line count");
                let partition = rng.gen_range(0..cache.partitions());
                if cache.inject_direction_fault(loc, partition) {
                    injected += 1;
                }
            }
        }
    }
    cache.flush();

    // Compare every written word against the golden image.
    let mut corrupted = 0;
    let mut seen = std::collections::BTreeSet::new();
    for access in trace.iter().filter(|a| a.is_write()) {
        let addr = access.addr.align_down(8);
        if seen.insert(addr)
            && cache.memory_mut().load(addr, 8) != golden.load(Address::new(addr.value()), 8)
        {
            corrupted += 1;
        }
    }
    corrupted
}

/// `(faults, corrupted_words)` sweep on one kernel.
pub fn data(faults: &[usize]) -> Vec<(usize, usize)> {
    let w = kernels::matmul(24, 1);
    faults
        .iter()
        .map(|&f| (f, corrupted_words(&w.trace, f, 0xFA17)))
        .collect()
}

/// Regenerates the fault-injection study.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Direction-bit soft errors (matmul, 24x24): injected metadata\n\
         upsets vs corrupted 64-bit words in the final memory image.\n\
         The baseline cache has no direction bits and is immune; every\n\
         corruption below is silent (no detection mechanism exists).\n"
    );
    let _ = writeln!(out, "| {:>7} | {:>16} |", "upsets", "corrupted words");
    for (faults, corrupted) in data(&[0, 1, 2, 4, 8, 16]) {
        let _ = writeln!(out, "| {faults:>7} | {corrupted:>16} |");
    }
    let _ = writeln!(
        out,
        "\nMitigation (future work): one parity bit over the D field per\n\
         line detects all single upsets at +{:.2}% additional storage.",
        1.0 / 512.0 * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_faults_zero_corruption() {
        let w = kernels::matmul(10, 1);
        assert_eq!(corrupted_words(&w.trace, 0, 1), 0);
    }

    #[test]
    fn faults_corrupt_silently() {
        let w = kernels::matmul(10, 1);
        let corrupted = corrupted_words(&w.trace, 8, 1);
        assert!(corrupted > 0, "8 upsets must corrupt something");
    }

    #[test]
    fn corruption_grows_with_fault_count() {
        let w = kernels::matmul(12, 1);
        let few = corrupted_words(&w.trace, 1, 2);
        let many = corrupted_words(&w.trace, 16, 2);
        assert!(
            many >= few,
            "more upsets cannot corrupt less: {few} vs {many}"
        );
    }
}

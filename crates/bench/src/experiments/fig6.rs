//! Fig. 6: ablation across encoding policies.
//!
//! Baseline (none) vs static DBI-like fill-time inversion (both
//! preferences) vs adaptive full-line vs adaptive partitioned — the
//! ordering `adaptive partitioned ≥ adaptive full-line ≥ static ≥ none`
//! on the suite mean is the design-choice justification.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_encoding::BitPreference;
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// The ablated policies, in presentation order.
pub fn policies() -> Vec<(&'static str, EncodingPolicy)> {
    vec![
        (
            "static-ones",
            EncodingPolicy::StaticInvert {
                preference: BitPreference::MoreOnes,
                partitions: 8,
            },
        ),
        (
            "static-zeros",
            EncodingPolicy::StaticInvert {
                preference: BitPreference::MoreZeros,
                partitions: 8,
            },
        ),
        (
            "adaptive-full",
            EncodingPolicy::Adaptive(AdaptiveParams {
                partitions: 1,
                ..AdaptiveParams::paper_default()
            }),
        ),
        ("adaptive-part", EncodingPolicy::adaptive_default()),
    ]
}

/// Mean suite saving per policy.
pub fn data(workloads: &[Workload]) -> Vec<(&'static str, f64)> {
    let (labels, variants): (Vec<_>, Vec<_>) = policies().into_iter().unzip();
    let mut all = vec![EncodingPolicy::None];
    all.extend(variants);
    let matrix = run_dcache_matrix(workloads, &all);
    labels
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let savings: Vec<f64> = matrix
                .iter()
                .map(|reports| reports[i + 1].saving_vs(&reports[0]))
                .collect();
            (label, mean(&savings))
        })
        .collect()
}

/// Regenerates the policy ablation on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Encoding-policy ablation (suite mean saving vs baseline):\n"
    );
    let _ = writeln!(out, "| {:<14} | {:>12} |", "policy", "mean saving");
    for (label, saving) in data(&cnt_workloads::suite()) {
        let _ = writeln!(out, "| {label:<14} | {saving:>11.2}% |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_partitioned_wins_the_ablation() {
        let rows = data(&cnt_workloads::suite_small());
        let by = |n: &str| {
            rows.iter()
                .find(|(l, _)| *l == n)
                .unwrap_or_else(|| panic!("missing {n}"))
                .1
        };
        assert!(
            by("adaptive-part") >= by("adaptive-full") - 5.0,
            "partitioned {:.1}% vs full-line {:.1}% (should be within a few percent on homogeneous lines)",
            by("adaptive-part"),
            by("adaptive-full")
        );
        assert!(
            by("adaptive-part") > by("static-zeros"),
            "adaptive must beat write-preferring static"
        );
    }
}

//! Table 2: CNT-Cache overheads.
//!
//! Storage (H&D bits per line), encoding-switch activity, FIFO behaviour,
//! and where the added energy goes, per benchmark.

use std::fmt::Write as _;

use cnt_cache::{EncodingPolicy, EnergyReport};
use cnt_energy::ChargeKind;
use cnt_workloads::Workload;

use crate::runner::{dcache_config, run_dcache};

/// One benchmark's overhead row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Switches applied per 1 000 accesses.
    pub switches_per_kilo: f64,
    /// Fraction of completed windows that decided to switch.
    pub switch_rate: f64,
    /// Updates dropped at the FIFO.
    pub fifo_dropped: u64,
    /// FIFO high-water mark.
    pub fifo_peak: usize,
    /// Share of total energy spent on re-encoding writes (percent).
    pub switch_energy_percent: f64,
    /// Share of total energy spent on H&D metadata (percent).
    pub metadata_energy_percent: f64,
}

impl OverheadRow {
    fn from_report(name: &str, r: &EnergyReport) -> Self {
        let total = r.total().femtojoules();
        let switch = r.breakdown.energy(ChargeKind::EncodeSwitch).femtojoules();
        let metadata = (r.breakdown.energy(ChargeKind::MetadataRead)
            + r.breakdown.energy(ChargeKind::MetadataWrite))
        .femtojoules();
        OverheadRow {
            name: name.to_string(),
            switches_per_kilo: r.encoding.switches_applied as f64 / r.stats.accesses() as f64
                * 1000.0,
            switch_rate: r.switch_rate(),
            fifo_dropped: r.fifo.dropped,
            fifo_peak: r.fifo.max_occupancy,
            switch_energy_percent: switch / total * 100.0,
            metadata_energy_percent: metadata / total * 100.0,
        }
    }
}

/// Overhead rows for a workload list.
pub fn data(workloads: &[Workload]) -> Vec<OverheadRow> {
    crate::pool::par_map(workloads, |w| {
        let r = run_dcache(EncodingPolicy::adaptive_default(), &w.trace);
        OverheadRow::from_report(&w.name, &r)
    })
}

/// Regenerates the overhead table on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let config = dcache_config("L1D", EncodingPolicy::adaptive_default());
    let line_bits = config.geometry.line_bits();
    let md_bits = config.policy.metadata_bits_per_line(line_bits);
    let _ = writeln!(
        out,
        "Storage overhead: {md_bits} H&D bits per {line_bits}-bit line = {:.2}%.\n",
        f64::from(md_bits) / f64::from(line_bits) * 100.0
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>10} | {:>10} | {:>9} | {:>8} | {:>10} | {:>10} |",
        "benchmark", "sw/kacc", "sw rate", "fifo drop", "fifo max", "sw energy", "md energy"
    );
    for row in data(&cnt_workloads::suite()) {
        let _ = writeln!(
            out,
            "| {:<16} | {:>10.2} | {:>9.1}% | {:>9} | {:>8} | {:>9.2}% | {:>9.2}% |",
            row.name,
            row.switches_per_kilo,
            row.switch_rate * 100.0,
            row.fifo_dropped,
            row.fifo_peak,
            row.switch_energy_percent,
            row.metadata_energy_percent
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_bounded() {
        for row in data(&cnt_workloads::suite_small()) {
            assert!(
                row.switch_energy_percent < 25.0,
                "{}: switch energy {:.1}%",
                row.name,
                row.switch_energy_percent
            );
            assert!(
                row.metadata_energy_percent < 15.0,
                "{}: metadata energy {:.1}%",
                row.name,
                row.metadata_energy_percent
            );
            assert!((0.0..=1.0).contains(&row.switch_rate));
        }
    }

    #[test]
    fn storage_overhead_is_about_three_percent() {
        let config = dcache_config("L1D", EncodingPolicy::adaptive_default());
        let ratio = f64::from(
            config
                .policy
                .metadata_bits_per_line(config.geometry.line_bits()),
        ) / f64::from(config.geometry.line_bits());
        assert!(ratio < 0.05, "H&D overhead {ratio:.3} too large");
    }
}

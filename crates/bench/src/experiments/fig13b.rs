//! Fig. 13b (extension): the fig13 fault study, re-run with the
//! direction metadata *protected*.
//!
//! Fig. 13 established that an unprotected D field corrupts memory
//! silently. This companion sweeps the same seeded upset campaign across
//! the protection modes and fault policies of DESIGN.md §10: parity
//! detects every single upset and degrades gracefully (invalidate and
//! refetch, or pin to baseline encoding), SECDED with interval scrubbing
//! corrects everything in place, and the unprotected row reproduces the
//! original fig13 corruption counts as the control. The last column
//! prices the protection against the replay's total dynamic energy.

use std::fmt::Write as _;

use cnt_workloads::kernels;

use crate::campaign;

/// Fault counts swept per protection row — the fig13 x-axis, minus the
/// trivial zero row.
const FAULT_COUNTS: &[usize] = &[2, 8, 16];

/// Same seed as fig13, so the unprotected control row is comparable.
const SEED: u64 = 0xFA17;

/// Runs the protected fault-injection sweep on the fig13 workload.
pub fn run() -> String {
    let w = kernels::matmul(24, 1);
    let grid = campaign::default_grid(FAULT_COUNTS, SEED);
    let outcomes = campaign::sweep(&w.trace, &grid);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Direction-metadata protection under the fig13 upset campaign\n\
         (matmul, 24x24, seed {SEED:#x}): injected upsets vs corruption,\n\
         by protection mode and fault policy. Scrub runs once per\n\
         injection interval, so at most one upset is outstanding per\n\
         line. `none` is the unprotected fig13 control; `silent` counts\n\
         corrupted words on lines the cache never flagged.\n"
    );
    out.push_str(&campaign::render(&outcomes));
    let silent_protected: u64 = outcomes
        .iter()
        .filter(|o| o.spec.protection != cnt_cache::prelude::ProtectionMode::None)
        .map(|o| o.silent_corruptions)
        .sum();
    let _ = writeln!(
        out,
        "\nEvery protected row is silent-corruption-free (total silent\n\
         words across protected cells: {silent_protected}); SECDED additionally loses\n\
         no data at all. The D field is a few bits per 512-bit line, so\n\
         parity costs well under 1% of the replay's dynamic energy and\n\
         full SECDED stays around 2%."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_zero_silent_guarantee() {
        let report = run();
        assert!(report.contains("| faults |"));
        assert!(report.contains("secded"));
        assert!(report.contains("total silent\nwords across protected cells: 0"));
    }
}

//! Fig. 13b (extension): the fig13 fault study, re-run with the
//! direction metadata *protected*.
//!
//! Fig. 13 established that an unprotected D field corrupts memory
//! silently. This companion sweeps the same seeded upset campaign across
//! the protection modes and fault policies of DESIGN.md §10: parity
//! detects every single upset and degrades gracefully (invalidate and
//! refetch, or pin to baseline encoding), SECDED with interval scrubbing
//! corrects everything in place, and the unprotected row reproduces the
//! original fig13 corruption counts as the control. The last column
//! prices the protection against the replay's total dynamic energy.

use std::fmt::Write as _;

use cnt_workloads::kernels;

use crate::campaign;

/// Fault counts swept per protection row — the fig13 x-axis, minus the
/// trivial zero row.
const FAULT_COUNTS: &[usize] = &[2, 8, 16];

/// Fault counts for the prediction-history (H) table. H upsets only
/// matter if the victim counter is *read* before the window resets it,
/// so the unprotected control needs a denser schedule to exhibit skew.
const HISTORY_FAULT_COUNTS: &[usize] = &[16, 64, 256];

/// Same seed as fig13, so the unprotected control row is comparable.
const SEED: u64 = 0xFA17;

/// Runs the protected fault-injection sweep on the fig13 workload.
pub fn run() -> String {
    let w = kernels::matmul(24, 1);
    let grid = campaign::default_grid(FAULT_COUNTS, SEED);
    let outcomes = campaign::sweep(&w.trace, &grid);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Direction-metadata protection under the fig13 upset campaign\n\
         (matmul, 24x24, seed {SEED:#x}): injected upsets vs corruption,\n\
         by protection mode and fault policy. Scrub runs once per\n\
         injection interval, so at most one upset is outstanding per\n\
         line. `none` is the unprotected fig13 control; `silent` counts\n\
         corrupted words on lines the cache never flagged.\n"
    );
    out.push_str(&campaign::render(&outcomes));
    let silent_protected: u64 = outcomes
        .iter()
        .filter(|o| o.spec.protection != cnt_cache::prelude::ProtectionMode::None)
        .map(|o| o.silent_corruptions)
        .sum();
    let _ = writeln!(
        out,
        "\nEvery protected row is silent-corruption-free (total silent\n\
         words across protected cells: {silent_protected}); SECDED additionally loses\n\
         no data at all. The D field is a few bits per 512-bit line, so\n\
         parity costs well under 1% of the replay's dynamic energy and\n\
         full SECDED stays around 2%.\n"
    );

    // Second table: the same upset schedule aimed at the prediction
    // history (H) registers. An H upset never corrupts data — it skews
    // *decisions*: the predictor mistimes or misdirects encoding
    // switches, visible as window/switch counts diverging from the
    // fault-free golden replay. Unprotected, the skew is silent
    // (detected = 0); under SECDED every single upset is corrected in
    // place, and when two stack on one register the error is detected
    // and the register reset — the reset can still nudge a window
    // boundary, but it is *flagged*, never silent.
    // H counters are few and churn fast, so on this footprint it takes
    // a denser upset schedule than the D sweep for the unprotected
    // control to visibly mistime a switch.
    let history_grid: Vec<(cnt_cache::prelude::ProtectionMode, usize)> = HISTORY_FAULT_COUNTS
        .iter()
        .flat_map(|&faults| {
            [
                (cnt_cache::prelude::ProtectionMode::None, faults),
                (cnt_cache::prelude::ProtectionMode::Secded, faults),
            ]
        })
        .collect();
    let history = campaign::sweep_history(&w.trace, &history_grid, SEED);
    let _ = writeln!(
        out,
        "Prediction-history (H) upsets under the same campaign: encoding\n\
         decisions vs the fault-free golden replay, by protection mode.\n"
    );
    out.push_str(&campaign::render_history(&history));
    let silent_skewed_protected = history
        .iter()
        .filter(|o| o.protection != cnt_cache::prelude::ProtectionMode::None)
        .filter(|o| o.silent_skew())
        .count();
    let _ = writeln!(
        out,
        "\nProtected cells with silent prediction skew: {silent_skewed_protected}. The H\n\
         register is a handful of counter bits per line; protecting it\n\
         like the D field closes the last silent path through the\n\
         encoding metadata. (At the densest schedule, upsets stacking\n\
         two-deep on one register exceed SECDED's correction radius —\n\
         the register is detected-and-reset, which can nudge a window\n\
         boundary, but the event is flagged, never silent.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_zero_silent_guarantee() {
        let report = run();
        assert!(report.contains("| faults |"));
        assert!(report.contains("secded"));
        assert!(report.contains("total silent\nwords across protected cells: 0"));
        assert!(report.contains("silent skew"));
        assert!(report.contains("Protected cells with silent prediction skew: 0"));
        // The unprotected control must actually exhibit the hazard.
        assert!(report.contains("YES"));
    }
}

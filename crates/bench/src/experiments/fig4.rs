//! Fig. 4: sensitivity to the prediction window `W`.
//!
//! Small windows react fast but switch often (churn + more metadata
//! traffic relative to useful prediction); large windows adapt slowly and
//! need wider counters. The draft's default checkpoint is 15.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_encoding::AccessHistory;
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// The swept window lengths.
pub const WINDOWS: [u32; 5] = [7, 15, 31, 63, 127];

/// Mean suite saving and switch count per window length.
pub fn data(workloads: &[Workload]) -> Vec<(u32, f64, u64)> {
    let mut policies = vec![EncodingPolicy::None];
    policies.extend(WINDOWS.iter().map(|&window| {
        EncodingPolicy::Adaptive(AdaptiveParams {
            window,
            ..AdaptiveParams::paper_default()
        })
    }));
    let matrix = run_dcache_matrix(workloads, &policies);
    WINDOWS
        .iter()
        .enumerate()
        .map(|(i, &window)| {
            let mut savings = Vec::new();
            let mut switches = 0;
            for reports in &matrix {
                let cnt = &reports[i + 1];
                savings.push(cnt.saving_vs(&reports[0]));
                switches += cnt.encoding.switches_applied;
            }
            (window, mean(&savings), switches)
        })
        .collect()
}

/// Regenerates the window-sensitivity figure on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Window-length sensitivity (suite mean, P=8, ΔT=0.1):\n"
    );
    let _ = writeln!(
        out,
        "| {:>4} | {:>12} | {:>10} | {:>16} |",
        "W", "mean saving", "switches", "history bits/line"
    );
    for (window, saving, switches) in data(&cnt_workloads::suite()) {
        let _ = writeln!(
            out,
            "| {:>4} | {:>11.2}% | {:>10} | {:>16} |",
            window,
            saving,
            switches,
            AccessHistory::storage_bits(window)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sweep_has_plausible_shape() {
        let rows = data(&cnt_workloads::suite_small());
        assert_eq!(rows.len(), WINDOWS.len());
        // Every window setting still saves on average.
        for (w, saving, _) in &rows {
            assert!(*saving > 0.0, "W={w} lost energy ({saving:.1}%)");
        }
        // Smaller windows produce at least as many switch events.
        let first_switches = rows[0].2;
        let last_switches = rows[rows.len() - 1].2;
        assert!(
            first_switches >= last_switches,
            "switch counts should fall with W: {first_switches} vs {last_switches}"
        );
    }
}

//! Fig. 14 (extension): prefetching × adaptive encoding.
//!
//! A next-line prefetcher changes the fill mix: more lines are installed
//! per demand miss, each paying a full-line write into the array. Does
//! the encoder's saving survive the extra fill traffic — and does greedy
//! fill-time encoding (`fill_preference`) recover it?

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, CntCacheConfig, EncodingPolicy};
use cnt_encoding::BitPreference;
use cnt_sim::PrefetchPolicy;
use cnt_workloads::Workload;

use crate::runner::{mean, run_trace};

fn config(prefetch: PrefetchPolicy, policy: EncodingPolicy) -> CntCacheConfig {
    CntCacheConfig::builder()
        .prefetch(prefetch)
        .policy(policy)
        .build()
        .expect("static geometry is valid")
}

/// The encoder variants compared under each prefetch setting.
fn encoder_variants() -> Vec<(&'static str, EncodingPolicy)> {
    vec![
        ("adaptive", EncodingPolicy::adaptive_default()),
        (
            "adaptive+greedy-fill",
            EncodingPolicy::Adaptive(AdaptiveParams {
                fill_preference: Some(BitPreference::MoreOnes),
                ..AdaptiveParams::paper_default()
            }),
        ),
    ]
}

/// `(prefetch, variant, mean_saving, mean_hit_rate)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(PrefetchPolicy, &'static str, f64, f64)> {
    let mut rows = Vec::new();
    for prefetch in [PrefetchPolicy::None, PrefetchPolicy::NextLine] {
        for (label, policy) in encoder_variants() {
            let pairs = crate::pool::par_map(workloads, |w| {
                let base = run_trace(config(prefetch, EncodingPolicy::None), &w.trace);
                let cnt = run_trace(config(prefetch, policy), &w.trace);
                (cnt.saving_vs(&base), cnt.stats.hit_rate())
            });
            let savings: Vec<f64> = pairs.iter().map(|&(s, _)| s).collect();
            let hit_rates: Vec<f64> = pairs.iter().map(|&(_, h)| h).collect();
            rows.push((prefetch, label, mean(&savings), mean(&hit_rates)));
        }
    }
    rows
}

/// Regenerates the prefetch-interaction study on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Prefetch x encoding interaction (savings vs the *matching*\n\
         prefetch baseline, so the prefetcher's own cost cancels out):\n"
    );
    let _ = writeln!(
        out,
        "| {:<10} | {:<22} | {:>12} | {:>9} |",
        "prefetch", "encoder", "mean saving", "hit rate"
    );
    for (prefetch, label, saving, hit_rate) in data(&cnt_workloads::suite()) {
        let _ = writeln!(
            out,
            "| {:<10} | {label:<22} | {saving:>11.2}% | {:>8.2}% |",
            prefetch.to_string(),
            hit_rate * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_survives_prefetching() {
        let rows = data(&cnt_workloads::suite_small());
        for (prefetch, label, saving, _) in &rows {
            if *label == "adaptive" {
                assert!(
                    *saving > 0.0,
                    "{prefetch}/{label}: encoding lost energy ({saving:.1}%)"
                );
            } else {
                // Greedy fill-time encoding repeats the static-ones
                // mistake (fig6) — it may lose, but boundedly.
                assert!(*saving > -25.0, "{prefetch}/{label}: {saving:.1}%");
            }
        }
        // Prefetching must not change hit rates downward.
        let no_pf = rows
            .iter()
            .find(|(p, l, ..)| *p == PrefetchPolicy::None && *l == "adaptive")
            .expect("row present");
        let pf = rows
            .iter()
            .find(|(p, l, ..)| *p == PrefetchPolicy::NextLine && *l == "adaptive")
            .expect("row present");
        assert!(
            pf.3 >= no_pf.3 - 0.01,
            "next-line prefetch should not hurt hit rate: {:.3} vs {:.3}",
            pf.3,
            no_pf.3
        );
    }
}

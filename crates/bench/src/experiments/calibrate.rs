//! Scratch calibration probe: per-kernel savings under the default
//! adaptive policy (used while tuning; superseded by `fig3`).

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_workloads::suite;

use crate::runner::{mean, run_dcache};

/// Runs the full suite and reports per-kernel savings for a quick look.
pub fn calibrate() -> String {
    let mut out = String::new();
    let mut savings = Vec::new();
    for w in suite() {
        let base = run_dcache(EncodingPolicy::None, &w.trace);
        let cnt = run_dcache(EncodingPolicy::adaptive_default(), &w.trace);
        let s = cnt.saving_vs(&base);
        savings.push(s);
        let _ = writeln!(
            out,
            "{:<16} {:>10} accesses  base {:>14.1} fJ  cnt {:>14.1} fJ  saving {:>6.2}%  (switches {} / windows {})",
            w.name,
            w.trace.len(),
            base.total().femtojoules(),
            cnt.total().femtojoules(),
            s,
            cnt.encoding.switches_applied,
            cnt.encoding.windows,
        );
    }
    let _ = writeln!(out, "mean saving: {:.2}%", mean(&savings));
    out
}

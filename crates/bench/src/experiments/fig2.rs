//! Fig. 2: the partitioned cache-line encoding example.
//!
//! A mostly-zero line with one all-ones partition is read-intensive.
//! Full-line inversion stores the `(K-1)`-th partition as zeros —
//! destroying exactly the bits that were already optimal — while
//! partitioned encoding leaves it untouched.

use std::fmt::Write as _;

use cnt_encoding::popcount::popcount_words;
use cnt_encoding::{BitPreference, LineCodec, PartitionLayout};

/// The paper's example line: K = 8 partitions, partition K-1 all ones.
pub fn example_line() -> [u64; 8] {
    let mut line = [0u64; 8];
    line[6] = u64::MAX; // the "(K-1)th partition" of the figure
    line[0] = 0x0000_0000_0000_00FF; // a few stray ones elsewhere
    line
}

/// Regenerates the Fig. 2 walkthrough.
pub fn run() -> String {
    let mut out = String::new();
    let line = example_line();
    let line_bits = 512u32;

    let full = LineCodec::new(PartitionLayout::full_line(line_bits).expect("static layout"));
    let part = LineCodec::new(PartitionLayout::new(line_bits, 8).expect("static layout"));

    let dirs_full = full.choose_directions(&line, BitPreference::MoreOnes);
    let dirs_part = part.choose_directions(&line, BitPreference::MoreOnes);
    let stored_full = full.apply(&line, &dirs_full);
    let stored_part = part.apply(&line, &dirs_part);

    let _ = writeln!(
        out,
        "Read-intensive line (prefers stored '1' bits), L = 512:"
    );
    let _ = writeln!(
        out,
        "  raw data ones:            {:>4} / 512",
        popcount_words(&line)
    );
    let _ = writeln!(
        out,
        "  full-line invert stores:  {:>4} / 512 ones (direction bits: 1)",
        popcount_words(&stored_full)
    );
    let _ = writeln!(
        out,
        "  partitioned (K=8) stores: {:>4} / 512 ones (direction bits: 8, mask {})",
        popcount_words(&stored_part),
        dirs_part
    );
    let _ = writeln!(
        out,
        "  partition 6 (all ones) is inverted by the full-line scheme but\n  kept normal by the partitioned scheme: {}",
        if dirs_part.is_inverted(6) { "INVERTED (bug!)" } else { "kept" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_beats_full_line_on_the_example() {
        let line = example_line();
        let full = LineCodec::new(PartitionLayout::full_line(512).expect("static"));
        let part = LineCodec::new(PartitionLayout::new(512, 8).expect("static"));
        let sf = full.apply(
            &line,
            &full.choose_directions(&line, BitPreference::MoreOnes),
        );
        let sp = part.apply(
            &line,
            &part.choose_directions(&line, BitPreference::MoreOnes),
        );
        assert!(popcount_words(&sp) > popcount_words(&sf));
        assert!(super::run().contains("kept"));
    }
}

//! Fig. 7: the hysteresis margin `ΔT`.
//!
//! The authors' draft notes: "the new pattern becomes the stable
//! optimization pattern only when E_original − E_new > ΔT · E_original
//! ... we will explore the relationship between ΔT and dynamic energy
//! saving". Zero margin lets near-break-even lines flip-flop; a large
//! margin forgoes real savings.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// The swept margins.
pub const DELTAS: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Mean suite saving and total switches per `ΔT`.
pub fn data(workloads: &[Workload]) -> Vec<(f64, f64, u64)> {
    let mut policies = vec![EncodingPolicy::None];
    policies.extend(DELTAS.iter().map(|&delta_t| {
        EncodingPolicy::Adaptive(AdaptiveParams {
            delta_t,
            ..AdaptiveParams::paper_default()
        })
    }));
    let matrix = run_dcache_matrix(workloads, &policies);
    DELTAS
        .iter()
        .enumerate()
        .map(|(i, &delta_t)| {
            let mut savings = Vec::new();
            let mut switches = 0;
            for reports in &matrix {
                let cnt = &reports[i + 1];
                savings.push(cnt.saving_vs(&reports[0]));
                switches += cnt.encoding.switches_applied;
            }
            (delta_t, mean(&savings), switches)
        })
        .collect()
}

/// Regenerates the hysteresis sweep on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Hysteresis-margin sweep (suite mean, W=15, P=8):\n");
    let _ = writeln!(
        out,
        "| {:>5} | {:>12} | {:>10} |",
        "ΔT", "mean saving", "switches"
    );
    for (delta_t, saving, switches) in data(&cnt_workloads::suite()) {
        let _ = writeln!(out, "| {delta_t:>5.2} | {saving:>11.2}% | {switches:>10} |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_monotonically_reduces_switching() {
        let rows = data(&cnt_workloads::suite_small());
        for pair in rows.windows(2) {
            assert!(
                pair[1].2 <= pair[0].2,
                "switches must fall as ΔT grows: {:?}",
                rows.iter().map(|r| r.2).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn moderate_hysteresis_beats_none() {
        let rows = data(&cnt_workloads::suite_small());
        let at = |d: f64| {
            rows.iter()
                .find(|(dt, ..)| (*dt - d).abs() < 1e-9)
                .expect("delta present")
                .1
        };
        assert!(
            at(0.1) > at(0.0),
            "ΔT=0.1 ({:.1}%) must beat ΔT=0 ({:.1}%) by suppressing churn",
            at(0.1),
            at(0.0)
        );
    }
}

//! Fig. 8: the crossover map — where does adaptive encoding win?
//!
//! Synthetic traces sweep the two axes the predictor responds to: the
//! read fraction and the bit density of the data. Savings peak at skewed
//! densities, vanish at 50 % density (nothing to encode), and are
//! bounded below by the metadata overhead.

use std::fmt::Write as _;

use cnt_cache::EncodingPolicy;
use cnt_workloads::synthetic::{AddressPattern, SyntheticSpec};

use crate::runner::run_dcache;

/// Swept read fractions.
pub const READ_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Swept one-bit densities.
pub const DENSITIES: [f64; 5] = [0.05, 0.25, 0.5, 0.75, 0.95];

/// Saving (percent) for one grid cell.
pub fn cell(read_fraction: f64, ones_density: f64, accesses: usize) -> f64 {
    let spec = SyntheticSpec {
        accesses,
        footprint_lines: 128,
        read_fraction,
        ones_density,
        pattern: AddressPattern::UniformRandom,
        seed: 0xF18,
    };
    let trace = spec.generate();
    let base = run_dcache(EncodingPolicy::None, &trace);
    let cnt = run_dcache(EncodingPolicy::adaptive_default(), &trace);
    cnt.saving_vs(&base)
}

/// Regenerates the crossover map.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Saving (%) by read fraction (rows) x one-bit density (columns),\n\
         uniform random lines, 128-line footprint, 40k accesses per cell:\n"
    );
    let _ = write!(out, "| rd\\den |");
    for d in DENSITIES {
        let _ = write!(out, " {d:>6.2} |");
    }
    let _ = writeln!(out);
    for rf in READ_FRACTIONS {
        let _ = write!(out, "| {rf:>6.2} |");
        for d in DENSITIES {
            let _ = write!(out, " {:>6.2} |", cell(rf, d, 40_000));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_shape_holds() {
        let n = 6_000;
        // Skewed-density read-heavy: big win.
        let sparse_reads = cell(1.0, 0.05, n);
        assert!(
            sparse_reads > 20.0,
            "sparse reads won only {sparse_reads:.1}%"
        );
        // Balanced density: nothing to encode; bounded loss.
        let dense_balanced = cell(0.5, 0.5, n);
        assert!(
            dense_balanced.abs() < 8.0,
            "50% density should be near-neutral, got {dense_balanced:.1}%"
        );
        // One-heavy write workload also wins (stores zeros).
        let ones_writes = cell(0.0, 0.95, n);
        assert!(
            ones_writes > 10.0,
            "one-dense writes won only {ones_writes:.1}%"
        );
    }
}

//! Table 5 (extension): performance overhead — the FIFO design pays zero
//! cycles; an inline re-encoder stalls the demand path.
//!
//! This quantifies the paper's claim that the encoder "has negligible
//! influence on the timing of the critical data path" because updates
//! drain through the data/index FIFOs in idle slots.

use std::fmt::Write as _;

use cnt_cache::{AdaptiveParams, EncodingPolicy, TimingModel};
use cnt_workloads::Workload;

use crate::runner::{mean, run_dcache_matrix};

/// `(name, fifo_overhead_pct, inline_overhead_pct, inline_stall_flips)` rows.
pub fn data(workloads: &[Workload]) -> Vec<(String, f64, f64, u64)> {
    let timing = TimingModel::default();
    let policies = [
        EncodingPolicy::None,
        EncodingPolicy::adaptive_default(),
        EncodingPolicy::Adaptive(AdaptiveParams {
            inline_updates: true,
            ..AdaptiveParams::paper_default()
        }),
    ];
    run_dcache_matrix(workloads, &policies)
        .iter()
        .zip(workloads)
        .map(|(r, w)| {
            (
                w.name.clone(),
                timing.overhead(&r[0], &r[1]) * 100.0,
                timing.overhead(&r[0], &r[2]) * 100.0,
                r[2].encoding.inline_partition_flips,
            )
        })
        .collect()
}

/// Regenerates the performance-overhead table on the full suite.
pub fn run() -> String {
    let mut out = String::new();
    let timing = TimingModel::default();
    let _ = writeln!(
        out,
        "Performance overhead vs baseline (hit={}cy, miss=+{}cy, wb={}cy,\n\
         inline re-encode={}cy/partition):\n",
        timing.hit_cycles,
        timing.miss_penalty_cycles,
        timing.writeback_cycles,
        timing.reencode_cycles_per_partition
    );
    let _ = writeln!(
        out,
        "| {:<16} | {:>13} | {:>15} | {:>13} |",
        "benchmark", "FIFO design", "inline design", "inline stalls"
    );
    let rows = data(&cnt_workloads::suite());
    let mut fifo_all = Vec::new();
    let mut inline_all = Vec::new();
    for (name, fifo, inline, stalls) in &rows {
        fifo_all.push(*fifo);
        inline_all.push(*inline);
        let _ = writeln!(
            out,
            "| {name:<16} | {fifo:>12.3}% | {inline:>14.3}% | {stalls:>13} |"
        );
    }
    let _ = writeln!(
        out,
        "\nmean: FIFO {:.3}% vs inline {:.3}% — the FIFOs earn their area",
        mean(&fifo_all),
        mean(&inline_all)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_design_has_zero_cycle_overhead() {
        for (name, fifo, inline, _) in data(&cnt_workloads::suite_small()) {
            assert!(
                fifo.abs() < 1e-9,
                "{name}: FIFO design added {fifo:.4}% cycles"
            );
            assert!(inline >= fifo, "{name}: inline cannot be faster");
        }
    }

    #[test]
    fn inline_design_pays_on_switch_heavy_kernels() {
        let rows = data(&cnt_workloads::suite_small());
        let any_pays = rows.iter().any(|(_, _, inline, _)| *inline > 0.01);
        assert!(
            any_pays,
            "some kernel must show inline stall cost: {rows:?}"
        );
    }
}

//! Table I ("rw-analysis"): per-bit CNFET vs CMOS SRAM access energies.

use std::fmt::Write as _;

use cnt_energy::table::TableOne;

/// Regenerates Table I plus a CNFET supply-voltage sweep.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Per-bit SRAM access energies (the paper's Table 'rw-analysis').\n\
         The CNFET cell writes '1' at ~10x the cost of '0' and reads '0'\n\
         far above '1'; the CMOS cell is symmetric and pricier overall.\n"
    );
    let table = TableOne::generate_with_vdd_sweep(&[0.8, 0.7])
        .expect("static sweep voltages are admissible");
    let _ = write!(out, "{table}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_shows_the_asymmetries() {
        let text = super::run();
        assert!(text.contains("CNFET @0.9V"));
        assert!(text.contains("CMOS @0.9V"));
        assert!(text.contains("CNFET @0.70V"));
    }
}

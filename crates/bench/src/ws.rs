//! A Chase-Lev work-stealing deque over `usize` task ids.
//!
//! This is the classic algorithm (Chase & Lev, *Dynamic Circular
//! Work-Stealing Deque*, SPAA'05, with the memory-ordering corrections
//! of Lê et al., PPoPP'13) specialised to the one shape the scheduler
//! needs: tasks are **slice indices**, so every buffer slot is a single
//! machine word and the whole structure is expressible in safe Rust —
//! slots are `AtomicUsize`, a racy read of a slot that loses the `top`
//! CAS yields a value that is simply discarded, never a dangling
//! pointer. The buffer does not grow: the scheduler knows the fan-out
//! size up front and sizes each deque to its block, so [`Worker::push`]
//! asserts instead of reallocating.
//!
//! Roles are enforced by the type split:
//!
//! * [`Worker`] — the single owner. Pushes and pops at the **bottom**
//!   (LIFO), uncontended in the common case. `Worker` is `Send` but not
//!   `Sync` and not `Clone`, so exactly one thread drives it.
//! * [`Stealer`] — any number of thieves. Steal from the **top**
//!   (FIFO), serialised by a compare-exchange on `top`.
//!
//! All orderings are `SeqCst`. The tasks scheduled through this deque
//! are whole trace replays (milliseconds to seconds each), so deque
//! traffic is nowhere near a hot path and the simplest correct fencing
//! wins.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;

/// Outcome of one [`Stealer::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task was claimed.
    Success(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

struct Inner {
    /// Next slot the owner pushes into / pops from (grows on push,
    /// shrinks transiently during pop). `isize` so an owner pop on an
    /// empty deque can step to `top - 1` without underflow.
    bottom: AtomicIsize,
    /// Next slot thieves steal from; only ever incremented.
    top: AtomicIsize,
    /// Power-of-two circular buffer of task ids.
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

/// Creates a deque sized for at most `capacity` simultaneously queued
/// tasks, returning the owner and thief handles.
#[must_use]
pub fn deque(capacity: usize) -> (Worker, Stealer) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Vec<AtomicUsize> = (0..cap).map(|_| AtomicUsize::new(0)).collect();
    let inner = Arc::new(Inner {
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
        buf: buf.into_boxed_slice(),
        mask: cap - 1,
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: std::marker::PhantomData,
        },
        Stealer { inner },
    )
}

/// The owning end of a deque: single-threaded push/pop at the bottom.
pub struct Worker {
    inner: Arc<Inner>,
    /// `Cell` keeps `Worker: !Sync`, so two threads cannot share one
    /// owner end by reference.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl Worker {
    /// Enqueues a task at the bottom.
    ///
    /// # Panics
    ///
    /// Panics if the deque is full — the scheduler sizes deques to their
    /// whole block up front, so overflow is a harness bug.
    pub fn push(&self, task: usize) {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::SeqCst);
        let t = inner.top.load(Ordering::SeqCst);
        assert!(
            (b - t) as usize <= inner.mask,
            "ws deque overflow: capacity {} exhausted",
            inner.mask + 1
        );
        inner.buf[(b as usize) & inner.mask].store(task, Ordering::SeqCst);
        inner.bottom.store(b + 1, Ordering::SeqCst);
    }

    /// Dequeues the most recently pushed task, racing thieves for the
    /// last element.
    pub fn pop(&self) -> Option<usize> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::SeqCst) - 1;
        inner.bottom.store(b, Ordering::SeqCst);
        let t = inner.top.load(Ordering::SeqCst);
        if t > b {
            // Already empty: undo the transient decrement.
            inner.bottom.store(b + 1, Ordering::SeqCst);
            return None;
        }
        let task = inner.buf[(b as usize) & inner.mask].load(Ordering::SeqCst);
        if t < b {
            // More than one element left: the bottom one is ours alone.
            return Some(task);
        }
        // Exactly one element: race thieves for it via `top`.
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        // Empty either way; restore the canonical empty shape.
        inner.bottom.store(b + 1, Ordering::SeqCst);
        won.then_some(task)
    }

    /// A [`Stealer`] for this deque.
    #[must_use]
    pub fn stealer(&self) -> Stealer {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The thieving end of a deque: shared, steals from the top.
#[derive(Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

impl Stealer {
    /// Attempts to claim the oldest queued task.
    pub fn steal(&self) -> Steal {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Read the slot *before* claiming it: if the CAS wins, no other
        // party can have overwritten this slot (the owner only writes
        // `bottom`-side slots of a non-full deque, thieves only advance
        // `top`). If the CAS loses, the value is discarded.
        let task = inner.buf[(t as usize) & inner.mask].load(Ordering::SeqCst);
        match inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Steal::Success(task),
            Err(_) => Steal::Retry,
        }
    }

    /// Whether the deque looked empty at the moment of the call (racy,
    /// advisory — used only as a recruitment heuristic).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::SeqCst);
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn owner_lifo_thief_fifo() {
        let (worker, stealer) = deque(8);
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(stealer.steal(), Steal::Success(1), "thief takes oldest");
        assert_eq!(worker.pop(), Some(3), "owner takes newest");
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_rounds_up_and_wraps() {
        let (worker, stealer) = deque(3); // rounds to 4
        for round in 0..5 {
            // Fill and drain repeatedly so indices wrap the ring.
            for i in 0..4 {
                worker.push(round * 10 + i);
            }
            for _ in 0..2 {
                assert!(worker.pop().is_some());
            }
            for _ in 0..2 {
                assert!(matches!(stealer.steal(), Steal::Success(_)));
            }
            assert!(stealer.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "ws deque overflow")]
    fn overflow_panics() {
        let (worker, _stealer) = deque(2);
        worker.push(0);
        worker.push(1);
        worker.push(2);
    }

    /// The core safety property: under concurrent owner pops and
    /// multi-thief steals, every task is claimed exactly once.
    #[test]
    fn concurrent_claims_are_exactly_once() {
        const TASKS: usize = 10_000;
        const THIEVES: usize = 4;
        for _round in 0..4 {
            let (worker, stealer) = deque(TASKS);
            for i in 0..TASKS {
                worker.push(i);
            }
            let claimed = Mutex::new(Vec::<usize>::new());
            std::thread::scope(|scope| {
                for _ in 0..THIEVES {
                    let stealer = stealer.clone();
                    let claimed = &claimed;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            match stealer.steal() {
                                Steal::Success(task) => local.push(task),
                                Steal::Empty => break,
                                Steal::Retry => std::hint::spin_loop(),
                            }
                        }
                        claimed.lock().unwrap().extend(local);
                    });
                }
                let mut local = Vec::new();
                while let Some(task) = worker.pop() {
                    local.push(task);
                }
                claimed.lock().unwrap().extend(local);
            });
            let claimed = claimed.into_inner().unwrap();
            assert_eq!(claimed.len(), TASKS, "no task lost or duplicated");
            let unique: BTreeSet<usize> = claimed.iter().copied().collect();
            assert_eq!(unique.len(), TASKS);
            assert_eq!(unique.iter().next_back(), Some(&(TASKS - 1)));
        }
    }
}

//! The shared two-pass stream-replay driver.
//!
//! `tracegen stream-replay` and the `cnt-serve` replay server must
//! produce **byte-identical** observability streams for the same trace
//! and configuration — that is the determinism bar that makes a served
//! session auditable against an offline run. Rather than asking two
//! copies of the pass logic to stay in lock-step forever, both front
//! ends call this one driver: open the trace, replay it under the
//! baseline config (pass 0), replay it again under the adaptive CNT
//! config (pass 1), with optional periodic checkpoints, resume, and
//! cooperative cancellation threaded straight through to
//! [`replay_stream_resumable`].
//!
//! The driver deliberately does **not** install metrics sinks or burn
//! replay ids: the caller owns observability setup (the offline CLI
//! uses the process-wide sink, the server a thread-local session sink —
//! see `cnt_obs::local`) and applies [`restore_resume_obs`] before a
//! resumed run. Everything after that point is common code.

use std::io::BufReader;
use std::path::{Path, PathBuf};

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_trace::{
    CheckpointError, CheckpointFile, CheckpointRotator, ReadOptions, StreamReader, TraceError,
};

use crate::ckpt::{self, DriverState, ObsState};
use crate::runner::dcache_config;
use crate::stream::{
    replay_stream_resumable, CancelToken, CheckpointEvery, ReplayCursor, StreamError, StreamOutcome,
};

/// Where one session's periodic checkpoints land. The two layouts in
/// the tree are [`SingleFileStore`] (atomic overwrite-in-place, the
/// original `tracegen` behaviour) and the generation-rotated family of
/// [`cnt_trace::CheckpointRotator`].
pub trait CheckpointStore {
    /// Persists one complete checkpoint. An error aborts the replay.
    fn store(&mut self, file: &CheckpointFile) -> Result<(), CheckpointError>;
}

/// Single-file checkpoint layout: every write atomically replaces the
/// same path, so exactly the latest checkpoint exists.
pub struct SingleFileStore(pub PathBuf);

impl CheckpointStore for SingleFileStore {
    fn store(&mut self, file: &CheckpointFile) -> Result<(), CheckpointError> {
        file.write_atomic(&self.0)
    }
}

impl CheckpointStore for CheckpointRotator {
    fn store(&mut self, file: &CheckpointFile) -> Result<(), CheckpointError> {
        self.write(file).map(|_| ())
    }
}

/// Periodic-checkpoint policy for one [`run_two_pass`] call.
pub struct CheckpointPlan<'a> {
    /// Minimum chunks between checkpoint writes (window-boundary
    /// aligned, see [`CheckpointEvery`]).
    pub every: u64,
    /// Where the checkpoints go.
    pub store: &'a mut dyn CheckpointStore,
}

/// One session's complete replay plan.
pub struct SessionPlan<'a> {
    /// The `.ctr` trace to replay.
    pub input: &'a Path,
    /// Reader budget and corruption policy (both passes).
    pub opts: ReadOptions,
    /// Pass-0 (baseline) cache configuration.
    pub base_cfg: &'a CntCacheConfig,
    /// Pass-1 (adaptive CNT) cache configuration.
    pub cnt_cfg: &'a CntCacheConfig,
    /// The metrics epoch length the caller installed a sink with, or
    /// `None` for an unobserved replay. Only recorded into checkpoint
    /// driver state — the sink itself is the caller's.
    pub metrics_every: Option<u64>,
    /// Periodic checkpointing, if any.
    pub checkpoint: Option<CheckpointPlan<'a>>,
    /// Cooperative cancellation, if the session can be torn down from
    /// outside (server sessions always pass one).
    pub cancel: Option<&'a CancelToken>,
}

/// A validated checkpoint to resume from, as returned by
/// [`ckpt::load`]. The caller has already checked the config
/// fingerprint and restored observability state.
pub struct ResumeState {
    /// The checkpoint file (cache state + manifest).
    pub file: CheckpointFile,
    /// The driver section: pass, baseline outcome, cursor.
    pub driver: DriverState,
}

/// Both passes' outcomes.
pub struct TwoPassOutcome {
    /// Pass 0 — the baseline (no-encoding) replay.
    pub base: StreamOutcome,
    /// Pass 1 — the adaptive CNT replay.
    pub cnt: StreamOutcome,
}

/// A two-pass driver failure.
#[derive(Debug)]
pub enum DriverError {
    /// The replay itself failed (I/O, corruption, simulation,
    /// checkpoint write, cancellation) on `path`.
    Replay {
        /// The trace being replayed.
        path: PathBuf,
        /// What went wrong.
        error: StreamError,
    },
    /// The resume state is unusable for this plan (wrong pass number,
    /// missing baseline outcome).
    Resume(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Replay { path, error } => {
                write!(f, "`{}`: {error}", path.display())
            }
            DriverError::Resume(what) => write!(f, "resume: {what}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl DriverError {
    /// The replay cancellation inside, if that is what this error is.
    #[must_use]
    pub fn as_cancelled(&self) -> Option<(u64, u64)> {
        match self {
            DriverError::Replay {
                error: StreamError::Cancelled { chunk, accesses },
                ..
            } => Some((*chunk, *accesses)),
            _ => None,
        }
    }
}

/// The canonical stream-replay configuration pair: the paper's D-Cache
/// geometry, baseline (no encoding) and adaptive CNT. Every front end
/// replaying a served or offline `.ctr` session uses exactly this pair;
/// its [`ckpt::pair_fingerprint`] binds checkpoints to it.
#[must_use]
pub fn stream_config_pair() -> (CntCacheConfig, CntCacheConfig) {
    (
        dcache_config("L1D", EncodingPolicy::None),
        dcache_config("L1D", EncodingPolicy::adaptive_default()),
    )
}

/// Applies a loaded checkpoint's observability state before a resumed
/// run: restores/preloads the pre-kill snapshots into whichever sink is
/// installed (process-wide or thread-local — see [`ckpt::restore_obs`])
/// and burns the replay ids the interrupted process already allocated,
/// so later fresh passes get the same deterministic names as in an
/// uninterrupted run.
pub fn restore_resume_obs(driver: &DriverState, obs: ObsState) {
    ckpt::restore_obs(obs);
    for _ in 0..driver.replay_ids_allocated {
        let _ = cnt_obs::next_replay_path();
    }
}

/// Runs the two-pass comparison described by `plan`, optionally
/// resuming pass 0 or pass 1 from `resume`.
///
/// The caller must have installed its metrics sink (matching
/// `plan.metrics_every`) and, when resuming, already applied
/// [`restore_resume_obs`] — this function only replays.
///
/// # Errors
///
/// [`DriverError::Replay`] for any stream/simulation/checkpoint/
/// cancellation failure; [`DriverError::Resume`] when the checkpoint's
/// driver state cannot drive this plan.
pub fn run_two_pass(
    plan: SessionPlan<'_>,
    resume: Option<&ResumeState>,
) -> Result<TwoPassOutcome, DriverError> {
    let SessionPlan {
        input,
        opts,
        base_cfg,
        cnt_cfg,
        metrics_every,
        mut checkpoint,
        cancel,
    } = plan;
    let pair = (base_cfg, cnt_cfg);

    let mut one_pass = |config: &CntCacheConfig,
                        pass: u32,
                        baseline: Option<&StreamOutcome>,
                        resume_at: Option<(&CheckpointFile, &ReplayCursor)>|
     -> Result<StreamOutcome, DriverError> {
        let fail = |error: StreamError| DriverError::Replay {
            path: input.to_path_buf(),
            error,
        };
        let file = std::fs::File::open(input).map_err(|e| fail(TraceError::from(e).into()))?;
        let mut reader =
            StreamReader::new(BufReader::new(file), opts).map_err(|e| fail(e.into()))?;
        let mut cache =
            CntCache::new(config.clone()).expect("stream-replay configuration is valid");

        let cursor = if let Some((ckfile, cursor)) = resume_at {
            reader
                .seek_to_chunk(cursor.chunk)
                .map_err(|e| fail(e.into()))?;
            ckpt::verify_trace_identity(ckfile.manifest.trace_identity, reader.identity())
                .map_err(|e| fail(e.into()))?;
            ckfile
                .restore_component(&mut cache)
                .map_err(|e| fail(e.into()))?;
            Some(cursor.clone())
        } else {
            None
        };

        let every = checkpoint.as_ref().map(|ck| ck.every);
        let mut hook = |cache: &CntCache, state: &ReplayCursor, identity: u64| {
            let ck = checkpoint
                .as_mut()
                .expect("hook installed only with a checkpoint plan");
            let driver = DriverState {
                pass,
                baseline: baseline.cloned(),
                cursor: state.clone(),
                replay_ids_allocated: if metrics_every.is_some() {
                    u64::from(pass) + 1
                } else {
                    0
                },
                metrics_every,
            };
            ck.store
                .store(&ckpt::build(cache, pair, identity, &driver)?)
        };
        let periodic = every.map(|chunks| CheckpointEvery {
            chunks,
            write: &mut hook,
        });

        let (ingest, accesses) =
            replay_stream_resumable(&mut cache, &mut reader, cursor, periodic, cancel)
                .map_err(fail)?;
        cache.flush();
        Ok(StreamOutcome {
            report: cache.into_report(),
            ingest,
            accesses,
        })
    };

    match resume {
        Some(state) if state.driver.pass == 0 => {
            let base = one_pass(base_cfg, 0, None, Some((&state.file, &state.driver.cursor)))?;
            let cnt = one_pass(cnt_cfg, 1, Some(&base), None)?;
            Ok(TwoPassOutcome { base, cnt })
        }
        Some(state) if state.driver.pass == 1 => {
            let base = state.driver.baseline.clone().ok_or_else(|| {
                DriverError::Resume("pass-1 checkpoint lacks the baseline outcome".into())
            })?;
            let cnt = one_pass(
                cnt_cfg,
                1,
                Some(&base),
                Some((&state.file, &state.driver.cursor)),
            )?;
            Ok(TwoPassOutcome { base, cnt })
        }
        Some(state) => Err(DriverError::Resume(format!(
            "checkpoint records unknown pass {}",
            state.driver.pass
        ))),
        None => {
            let base = one_pass(base_cfg, 0, None, None)?;
            let cnt = one_pass(cnt_cfg, 1, Some(&base), None)?;
            Ok(TwoPassOutcome { base, cnt })
        }
    }
}

//! A small deterministic work-sharing thread pool.
//!
//! The harness originally targeted `rayon`, but this workspace vendors
//! every dependency, so the two primitives the runner actually needs are
//! implemented directly on `std::thread`:
//!
//! * [`par_map`] — apply a function to every element of a slice on worker
//!   threads, returning results **in input order** regardless of which
//!   thread computed them (this is what keeps parallel experiment output
//!   byte-identical to sequential output), and
//! * a **global concurrency budget** shared by nested `par_map` calls
//!   (experiments fan out over workloads *inside* an experiment fan-out),
//!   so `--jobs N` bounds total worker threads rather than multiplying at
//!   each nesting level.
//!
//! Workers pull indices from a shared atomic counter (work sharing, not
//! work stealing — equivalent for the coarse-grained trace replays here),
//! and the calling thread always participates, so `par_map` makes
//! progress even when the budget is exhausted and degrades to exactly the
//! sequential loop at `--jobs 1`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Extra worker threads available globally, beyond every `par_map`'s
/// caller thread. `jobs - 1` for a `--jobs N` run.
static BUDGET: AtomicUsize = AtomicUsize::new(0);
/// Whether [`set_jobs`] has been called; before that, [`jobs`] reports
/// the detected parallelism without reserving it.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Sets the global concurrency level: at most `jobs` threads (including
/// callers) ever run simultaneously across all nested [`par_map`] calls.
///
/// `jobs = 1` makes every subsequent [`par_map`] strictly sequential.
pub fn set_jobs(jobs: usize) {
    let jobs = jobs.max(1);
    BUDGET.store(jobs - 1, Ordering::SeqCst);
    CONFIGURED.store(jobs, Ordering::SeqCst);
}

/// The configured concurrency level, or the machine's available
/// parallelism when [`set_jobs`] has not been called.
pub fn jobs() -> usize {
    match CONFIGURED.load(Ordering::SeqCst) {
        0 => default_jobs(),
        n => n,
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Tries to reserve `want` extra worker threads from the global budget;
/// returns how many were actually reserved (possibly 0). Never blocks,
/// so nested calls cannot deadlock.
fn reserve(want: usize) -> usize {
    if CONFIGURED.load(Ordering::SeqCst) == 0 {
        // Not configured: take the lazy default once.
        set_jobs(default_jobs());
    }
    let mut granted = 0;
    while granted < want {
        let current = BUDGET.load(Ordering::SeqCst);
        if current == 0 {
            break;
        }
        if BUDGET
            .compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

/// Returns reserved worker threads to the global budget.
fn release(count: usize) {
    BUDGET.fetch_add(count, Ordering::SeqCst);
}

/// Applies `f` to every element of `items` using up to the globally
/// configured number of threads, returning the results in input order.
///
/// `f` runs exactly once per element. Panics in `f` propagate to the
/// caller after all workers have stopped.
///
/// The whole call opens an observability fan-out scope (numbered per
/// parent scope in program order) and every element runs inside an index
/// scope; worker threads adopt the caller's scope path first. Replay ids
/// minted inside `f` are therefore pure functions of call site and
/// element index — identical whether the element ran on the caller, a
/// worker, or the sequential fallback path.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // Fan-out scope first: it is numbered in program order on the caller
    // thread, so it must exist before any path decisions are made.
    let _fanout = cnt_obs::scoped_fanout();
    // One slot per remaining element is the most extra threads that can
    // ever be useful (the caller takes one element itself).
    let workers = reserve(n.saturating_sub(1));
    if workers == 0 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _scope = cnt_obs::scoped_index(i);
                f(item)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let forked = cnt_obs::fork();
    // Each thread claims indices from the shared counter and collects
    // (index, result) pairs locally; pairs are merged back into input
    // order afterwards.
    let pull = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let _scope = cnt_obs::scoped_index(i);
            local.push((i, f(&items[i])));
        }
        local
    };
    // Workers adopt the caller's scope path; the caller already has it
    // (adopting would reset its in-progress replay counters).
    let worker = || {
        let _adopted = cnt_obs::adopt(&forked);
        pull()
    };
    let result = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
        let mut pairs = pull(); // the caller participates too
        let mut panicked = None;
        for handle in handles {
            match handle.join() {
                Ok(local) => pairs.extend(local),
                Err(panic) => panicked = Some(panic),
            }
        }
        match panicked {
            Some(panic) => Err(panic),
            None => Ok(pairs),
        }
    });
    release(workers);
    let pairs = match result {
        Ok(pairs) => pairs,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, value) in pairs {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        set_jobs(4);
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_each_element_once() {
        set_jobs(4);
        let seen = Mutex::new(vec![0u32; 64]);
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, |&i| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn nested_calls_complete() {
        set_jobs(3);
        let outer: Vec<usize> = (0..8).collect();
        let sums = par_map(&outer, |&o| {
            let inner: Vec<usize> = (0..16).collect();
            par_map(&inner, |&i| o * 100 + i).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|o| (0..16).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn sequential_when_one_job() {
        set_jobs(1);
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, |&x| x + 1);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
        set_jobs(default_jobs());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }
}

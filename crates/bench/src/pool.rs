//! A deterministic work-stealing thread pool.
//!
//! The harness originally targeted `rayon`, but this workspace vendors
//! every dependency, so the primitives the runner needs are implemented
//! directly on `std::thread`:
//!
//! * [`par_map`] — apply a function to every element of a slice on worker
//!   threads, returning results **in input order** regardless of which
//!   thread computed them (this is what keeps parallel experiment output
//!   byte-identical to sequential output);
//! * a **global concurrency budget** shared by nested `par_map` calls
//!   (experiments fan out over workloads *inside* an experiment fan-out),
//!   so `--jobs N` bounds total worker threads rather than multiplying at
//!   each nesting level.
//!
//! ## Scheduling
//!
//! Two engines share the budget and the determinism contract:
//!
//! * [`SchedulerKind::WorkStealing`] (the default) — each participant
//!   owns a Chase-Lev deque ([`crate::ws`]) pre-loaded with a contiguous
//!   block of indices. Participants drain their own deque LIFO and steal
//!   FIFO from the others when empty. Two properties fix the straggler
//!   problem the static pool had:
//!
//!   1. **Incremental budget release** — a worker returns its budget slot
//!      the moment no stealable work remains (not when the whole fan-out
//!      joins), so a straggling element's *nested* `par_map` can reserve
//!      threads its finished siblings just gave back.
//!   2. **Dynamic recruitment** — between elements, a running fan-out
//!      polls the budget and spawns additional stealing workers when
//!      slots have become available, so freed capacity flows to whichever
//!      fan-out still has queued work.
//!
//! * [`SchedulerKind::Static`] — the original shared-counter work-sharing
//!   engine, kept as the comparison baseline for `bench_throughput --ws`
//!   and as a differential-testing oracle.
//!
//! Determinism is scheduler-independent: execution order is free, but
//! results are merged back into submission order and every element runs
//! inside the same observability scopes (`scoped_fanout` numbered on the
//! caller in program order, `scoped_index(i)` per element, workers adopt
//! the caller's forked scope path). Replay ids are pure functions of call
//! site and element index, so `--seq` and `--jobs N` output — including
//! the cnt-obs metrics stream — stays byte-identical.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Scope;

use crate::ws;

/// Extra worker threads available globally, beyond every `par_map`'s
/// caller thread. `jobs - 1` for a `--jobs N` run.
static BUDGET: AtomicUsize = AtomicUsize::new(0);
/// Whether [`set_jobs`] has been called; before that, [`jobs`] reports
/// the detected parallelism without reserving it.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);
/// Which engine [`par_map`] dispatches to; see [`SchedulerKind`].
static SCHEDULER: AtomicUsize = AtomicUsize::new(SCHED_WS);

const SCHED_WS: usize = 0;
const SCHED_STATIC: usize = 1;

/// Which scheduling engine [`par_map`] uses. Both engines observe the
/// same global budget and produce byte-identical results; they differ
/// only in how execution is distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Chase-Lev deques with incremental budget release and dynamic
    /// recruitment (the default).
    WorkStealing,
    /// The original shared-counter static fan-out (baseline/oracle).
    Static,
}

/// Selects the engine used by subsequent [`par_map`] calls.
pub fn set_scheduler(kind: SchedulerKind) {
    let v = match kind {
        SchedulerKind::WorkStealing => SCHED_WS,
        SchedulerKind::Static => SCHED_STATIC,
    };
    SCHEDULER.store(v, Ordering::SeqCst);
}

/// The currently selected scheduling engine.
#[must_use]
pub fn scheduler() -> SchedulerKind {
    match SCHEDULER.load(Ordering::SeqCst) {
        SCHED_STATIC => SchedulerKind::Static,
        _ => SchedulerKind::WorkStealing,
    }
}

/// Sets the global concurrency level: at most `jobs` threads (including
/// callers) ever run simultaneously across all nested [`par_map`] calls.
///
/// `jobs = 1` makes every subsequent [`par_map`] strictly sequential.
pub fn set_jobs(jobs: usize) {
    let jobs = jobs.max(1);
    BUDGET.store(jobs - 1, Ordering::SeqCst);
    CONFIGURED.store(jobs, Ordering::SeqCst);
}

/// The configured concurrency level, or the machine's available
/// parallelism when [`set_jobs`] has not been called.
pub fn jobs() -> usize {
    match CONFIGURED.load(Ordering::SeqCst) {
        0 => default_jobs(),
        n => n,
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extra worker slots currently unreserved. Exact only while no
/// `par_map` is in flight; the stress tests use it to prove the budget
/// is restored after panics and nested exhaustion.
#[must_use]
pub fn available_budget() -> usize {
    BUDGET.load(Ordering::SeqCst)
}

/// Tries to reserve `want` extra worker threads from the global budget;
/// returns how many were actually reserved (possibly 0). Never blocks,
/// so nested calls cannot deadlock.
fn reserve(want: usize) -> usize {
    if CONFIGURED.load(Ordering::SeqCst) == 0 {
        // Not configured: take the lazy default once.
        set_jobs(default_jobs());
    }
    let mut granted = 0;
    while granted < want {
        let current = BUDGET.load(Ordering::SeqCst);
        if current == 0 {
            break;
        }
        if BUDGET
            .compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

/// Returns reserved worker threads to the global budget.
fn release(count: usize) {
    BUDGET.fetch_add(count, Ordering::SeqCst);
}

/// Returns one budget slot on drop, so a worker's reservation survives
/// neither its exit nor an unwind.
struct BudgetSlot;

impl Drop for BudgetSlot {
    fn drop(&mut self) {
        release(1);
    }
}

/// Applies `f` to every element of `items` using up to the globally
/// configured number of threads, returning the results in input order.
///
/// `f` runs exactly once per element (a panic in `f` aborts the fan-out:
/// elements not yet started may be skipped, and the first panic payload
/// propagates to the caller after all workers have stopped).
///
/// The whole call opens an observability fan-out scope (numbered per
/// parent scope in program order) and every element runs inside an index
/// scope; worker threads adopt the caller's scope path first. Replay ids
/// minted inside `f` are therefore pure functions of call site and
/// element index — identical whether the element ran on the caller, a
/// worker, a mid-flight recruit, or the sequential fallback path.
///
/// Dispatches to the engine selected by [`set_scheduler`];
/// [`SchedulerKind::WorkStealing`] unless overridden.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match scheduler() {
        SchedulerKind::WorkStealing => par_map_ws(items, f),
        SchedulerKind::Static => par_map_static(items, f),
    }
}

/// Shared state of one work-stealing fan-out. Lives on the calling
/// thread's stack, borrowed by every participant.
struct Ctx<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    /// Thief ends of every participant's deque, in party order.
    stealers: Vec<ws::Stealer>,
    /// Completed `(index, result)` pairs, in completion order; merged
    /// back into submission order after the scope joins.
    results: Mutex<Vec<(usize, R)>>,
    /// First panic payload out of `f`, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Set on the first panic; participants stop claiming work.
    abort: AtomicBool,
    /// Elements still queued (claimed-but-running elements excluded);
    /// the recruitment heuristic only, never a termination condition.
    queued: AtomicUsize,
    /// The caller's scope path for workers/recruits to adopt.
    forked: cnt_obs::ScopeStack,
}

/// One scheduling participant: drains `own` LIFO, then steals FIFO from
/// the other parties' deques (ring order from `ring_start`), recruiting
/// extra workers whenever budget frees up while work is still queued.
///
/// Initial workers own a pre-loaded deque; mid-flight recruits run
/// steal-only (`own = None`). `budget` is the slot this participant
/// holds, returned to the pool the moment it runs out of work — which is
/// what lets a straggler's nested fan-out pick the slot up.
fn participant<'scope, T, R, F>(
    scope: &'scope Scope<'scope, '_>,
    ctx: &'scope Ctx<'scope, T, R, F>,
    own: Option<ws::Worker>,
    ring_start: usize,
    mut budget: Option<BudgetSlot>,
) where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    while let Some(index) = claim(ctx, own.as_ref(), ring_start) {
        ctx.queued.fetch_sub(1, Ordering::SeqCst);
        maybe_recruit(scope, ctx, index % ctx.stealers.len());
        let _scope = cnt_obs::scoped_index(index);
        match catch_unwind(AssertUnwindSafe(|| (ctx.f)(&ctx.items[index]))) {
            Ok(result) => {
                let mut results = ctx.results.lock().unwrap_or_else(|p| p.into_inner());
                results.push((index, result));
            }
            Err(payload) => {
                ctx.abort.store(true, Ordering::SeqCst);
                let mut slot = ctx.panic.lock().unwrap_or_else(|p| p.into_inner());
                slot.get_or_insert(payload);
            }
        }
    }
    // Explicit for emphasis: the slot goes back *now*, while siblings may
    // still be running, not when the fan-out joins.
    drop(budget.take());
}

/// Claims the next element for a participant, or `None` when every deque
/// is empty (or the fan-out aborted).
fn claim<T, R, F>(
    ctx: &Ctx<'_, T, R, F>,
    own: Option<&ws::Worker>,
    ring_start: usize,
) -> Option<usize> {
    loop {
        if ctx.abort.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(deque) = own {
            if let Some(index) = deque.pop() {
                return Some(index);
            }
        }
        let parties = ctx.stealers.len();
        let mut contended = false;
        for offset in 0..parties {
            match ctx.stealers[(ring_start + offset) % parties].steal() {
                ws::Steal::Success(index) => return Some(index),
                ws::Steal::Retry => contended = true,
                ws::Steal::Empty => {}
            }
        }
        if !contended {
            // Every deque observed empty with no lost race: done.
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Spawns one extra stealing worker if elements are still queued and the
/// global budget has a free slot (freed e.g. by a sibling fan-out that
/// finished early). Recruits adopt the fan-out's scope path, so replay
/// ids stay index-determined.
fn maybe_recruit<'scope, T, R, F>(
    scope: &'scope Scope<'scope, '_>,
    ctx: &'scope Ctx<'scope, T, R, F>,
    ring_start: usize,
) where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if ctx.queued.load(Ordering::SeqCst) == 0 || ctx.abort.load(Ordering::SeqCst) {
        return;
    }
    if reserve(1) == 0 {
        return;
    }
    let slot = BudgetSlot;
    scope.spawn(move || {
        let _adopted = cnt_obs::adopt(&ctx.forked);
        participant(scope, ctx, None, ring_start, Some(slot));
    });
}

/// The work-stealing engine behind [`par_map`].
fn par_map_ws<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // Fan-out scope first: it is numbered in program order on the caller
    // thread, so it must exist before any path decisions are made.
    let _fanout = cnt_obs::scoped_fanout();
    if jobs() == 1 || n == 1 {
        // `--jobs 1` is contractually sequential, and a single-element
        // fan-out has nothing to distribute: skip the deque machinery.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _scope = cnt_obs::scoped_index(i);
                f(item)
            })
            .collect();
    }
    // One slot per remaining element is the most extra threads that can
    // ever be useful (the caller takes one element itself). Unlike the
    // static engine, an exhausted budget (`workers == 0`) does NOT force
    // this fan-out sequential for its whole lifetime: the caller still
    // runs the deque loop alone and recruits between elements, so budget
    // released mid-flight by sibling fan-outs flows here. This is the
    // case a straggling element's nested fan-out hits.
    let workers = reserve(n.saturating_sub(1));
    let parties = workers + 1;
    let mut owners = Vec::with_capacity(parties);
    let mut stealers = Vec::with_capacity(parties);
    for _ in 0..parties {
        // Nobody pushes after setup (recruits never push at all), so a
        // deque never holds more than its initial block.
        let (owner, stealer) = ws::deque(n.div_ceil(parties));
        owners.push(owner);
        stealers.push(stealer);
    }
    // Pre-load party `p` with the contiguous block [p·n/P, (p+1)·n/P),
    // pushed in reverse so the owner's LIFO pop sees ascending indices.
    // All pushes happen before any worker is spawned, so every deque is
    // fully published by the spawn's happens-before edge.
    for (p, owner) in owners.iter().enumerate() {
        let lo = p * n / parties;
        let hi = (p + 1) * n / parties;
        for i in (lo..hi).rev() {
            owner.push(i);
        }
    }

    let ctx = Ctx {
        items,
        f: &f,
        stealers,
        results: Mutex::new(Vec::with_capacity(n)),
        panic: Mutex::new(None),
        abort: AtomicBool::new(false),
        queued: AtomicUsize::new(n),
        forked: cnt_obs::fork(),
    };
    let mut owners = owners.into_iter();
    let caller_deque = owners.next().expect("parties >= 1");
    std::thread::scope(|scope| {
        for (offset, owner) in owners.enumerate() {
            let ctx = &ctx;
            let slot = BudgetSlot;
            scope.spawn(move || {
                let _adopted = cnt_obs::adopt(&ctx.forked);
                participant(scope, ctx, Some(owner), offset + 1, Some(slot));
            });
        }
        // The caller participates too; it holds no budget slot (the
        // budget counts threads *beyond* callers).
        participant(scope, &ctx, Some(caller_deque), 0, None);
    });

    if let Some(payload) = ctx.panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
        std::panic::resume_unwind(payload);
    }
    let pairs = ctx.results.into_inner().unwrap_or_else(|p| p.into_inner());
    merge(n, pairs)
}

/// The original static work-sharing engine: workers pull indices from a
/// shared atomic counter and the budget is held until the whole fan-out
/// joins. Kept as the `bench_throughput --ws` baseline and as a
/// differential-testing oracle for the work-stealing engine.
pub fn par_map_static<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let _fanout = cnt_obs::scoped_fanout();
    let workers = reserve(n.saturating_sub(1));
    if workers == 0 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _scope = cnt_obs::scoped_index(i);
                f(item)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let forked = cnt_obs::fork();
    // Each thread claims indices from the shared counter and collects
    // (index, result) pairs locally; pairs are merged back into input
    // order afterwards.
    let pull = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let _scope = cnt_obs::scoped_index(i);
            local.push((i, f(&items[i])));
        }
        local
    };
    // Workers adopt the caller's scope path; the caller already has it
    // (adopting would reset its in-progress replay counters).
    let worker = || {
        let _adopted = cnt_obs::adopt(&forked);
        pull()
    };
    let result = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
        // The caller participates too. Its panic must be deferred like a
        // worker's: unwinding straight out of `thread::scope` would skip
        // the `release` below and leak the reserved budget.
        let (mut pairs, mut panicked) = match catch_unwind(AssertUnwindSafe(&pull)) {
            Ok(pairs) => (pairs, None),
            Err(panic) => (Vec::new(), Some(panic)),
        };
        for handle in handles {
            match handle.join() {
                Ok(local) => pairs.extend(local),
                Err(panic) => panicked = Some(panic),
            }
        }
        match panicked {
            Some(panic) => Err(panic),
            None => Ok(pairs),
        }
    });
    release(workers);
    let pairs = match result {
        Ok(pairs) => pairs,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    merge(n, pairs)
}

/// Restores submission order: scatters completion-ordered pairs into
/// their index slots.
fn merge<R>(n: usize, pairs: Vec<(usize, R)>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, value) in pairs {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        set_jobs(4);
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_each_element_once() {
        set_jobs(4);
        let seen = Mutex::new(vec![0u32; 64]);
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, |&i| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn nested_calls_complete() {
        set_jobs(3);
        let outer: Vec<usize> = (0..8).collect();
        let sums = par_map(&outer, |&o| {
            let inner: Vec<usize> = (0..16).collect();
            par_map(&inner, |&i| o * 100 + i).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|o| (0..16).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn sequential_when_one_job() {
        set_jobs(1);
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, |&x| x + 1);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
        set_jobs(default_jobs());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn both_engines_agree() {
        set_jobs(4);
        let items: Vec<u64> = (0..257).collect();
        let ws = par_map_ws(&items, |&x| x.wrapping_mul(x) ^ 0xA5);
        let stat = par_map_static(&items, |&x| x.wrapping_mul(x) ^ 0xA5);
        assert_eq!(ws, stat);
    }

    #[test]
    fn scheduler_kind_round_trips() {
        set_scheduler(SchedulerKind::Static);
        assert_eq!(scheduler(), SchedulerKind::Static);
        set_scheduler(SchedulerKind::WorkStealing);
        assert_eq!(scheduler(), SchedulerKind::WorkStealing);
    }

    #[test]
    fn uneven_elements_all_complete() {
        set_jobs(4);
        let items: Vec<u64> = (0..64).collect();
        // One element much slower than the rest: thieves must drain the
        // straggler's pre-loaded block.
        let out = par_map(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..65).collect::<Vec<_>>());
    }
}

//! Experiment harness for the CNT-Cache reproduction.
//!
//! Each module in [`experiments`] regenerates one table or figure of the
//! evaluation (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results). The `experiments` binary runs
//! them from the command line:
//!
//! ```text
//! cargo run --release -p cnt-bench --bin experiments -- all
//! cargo run --release -p cnt-bench --bin experiments -- fig3 fig6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod ckpt;
pub mod cli;
pub mod driver;
pub mod experiments;
pub mod pool;
pub mod record;
pub mod runner;
pub mod stream;
pub mod ws;

pub use record::{
    BenchRecord, IterStats, PassRecord, ServeBenchRecord, SimdBenchRecord, StageRecord,
    WorkloadBenchRecord, WorkloadRow, WsBenchRecord,
};

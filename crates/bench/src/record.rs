//! Serialisable result records for the throughput benchmarks
//! (`bench_throughput` writes `BENCH_parallel.json` for the
//! sequential-vs-parallel comparison and `BENCH_simd.json` for the
//! isolated hot-path stage report).

use serde::{Deserialize, Serialize};

fn one_iter() -> u32 {
    1
}

/// One timed replay of the suite matrix at a fixed `--jobs` setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassRecord {
    /// Worker threads the pool was capped at.
    pub jobs: usize,
    /// Wall-clock time for the whole matrix, in seconds.
    pub wall_seconds: f64,
    /// Trace accesses replayed per second of wall-clock.
    pub accesses_per_second: f64,
    /// Measured iterations behind the numbers. Records written before
    /// the field existed were single-shot, so absent parses as 1.
    #[serde(default = "one_iter")]
    pub iters: u32,
    /// Untimed warm-up iterations run before measuring (absent in old
    /// records, which warmed up exactly once — but the field defaults
    /// to 0 because the old shape never said so).
    #[serde(default)]
    pub warmup: u32,
}

/// The full sequential-vs-parallel comparison written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Hardware threads the machine reported at measurement time. A
    /// speedup near 1.0x on `cores: 1` is the honest expectation, not a
    /// regression.
    pub cores: usize,
    /// Workloads in the replayed suite.
    pub workloads: usize,
    /// Encoding policies replayed per workload.
    pub policies_per_workload: usize,
    /// Trace accesses replayed per pass (workload trace lengths x
    /// policies).
    pub accesses_per_pass: u64,
    /// The `--jobs 1` pass.
    pub sequential: PassRecord,
    /// The `--jobs N` pass.
    pub parallel: PassRecord,
    /// Why the numbers should not be read as a parallel-scaling claim —
    /// set automatically when the measuring box has fewer than 4 cores,
    /// `null`/absent on a real multi-core measurement.
    #[serde(default)]
    pub skip_note: Option<String>,
}

impl BenchRecord {
    /// Sequential wall-clock divided by parallel wall-clock, or `0.0`
    /// for a degenerate zero-length parallel pass (the ratio must stay
    /// finite so it can be rendered and serialized anywhere).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel.wall_seconds > 0.0 {
            self.sequential.wall_seconds / self.parallel.wall_seconds
        } else {
            0.0
        }
    }
}

/// The scheduler comparison written to `BENCH_ws.json` by
/// `bench_throughput --ws`: the experiments-matrix shape with one
/// deliberately skewed (N×-repeated) workload, replayed under the
/// static engine and the work-stealing engine at the same `--jobs`
/// setting. Both passes must produce identical energy reports — the
/// record only exists if they did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WsBenchRecord {
    /// Hardware threads the machine reported at measurement time
    /// (`pool::default_jobs()`). Scheduler speedups measured with
    /// `jobs > cores` are unreliable and flagged by `metrics_lint`.
    pub cores: usize,
    /// The `--jobs` cap both passes ran under.
    pub jobs: usize,
    /// How many times the skewed workload's replay is repeated inside
    /// its matrix cell (the deliberate straggler).
    pub skew: u32,
    /// Workloads in the matrix (including the skewed one).
    pub workloads: usize,
    /// Encoding policies replayed per workload.
    pub policies_per_workload: usize,
    /// Trace accesses replayed per pass, counting skew repetitions.
    pub accesses_per_pass: u64,
    /// The pass under [`crate::pool::SchedulerKind::Static`].
    pub static_pass: PassRecord,
    /// The pass under [`crate::pool::SchedulerKind::WorkStealing`].
    pub ws_pass: PassRecord,
    /// Why the numbers should not be read as a parallel-scaling claim —
    /// set automatically when the measuring box has fewer than 4 cores,
    /// `null`/absent on a real multi-core measurement.
    #[serde(default)]
    pub skip_note: Option<String>,
}

impl WsBenchRecord {
    /// Static wall-clock divided by work-stealing wall-clock (>1 means
    /// stealing won), or `0.0` for a degenerate zero-length pass.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.ws_pass.wall_seconds > 0.0 {
            self.static_pass.wall_seconds / self.ws_pass.wall_seconds
        } else {
            0.0
        }
    }
}

/// The trace-replay service comparison written to `BENCH_serve.json` by
/// `bench_serve`: the same batch of sessions shipped to a `cnt-serve`
/// instance one at a time (serial) and all at once (concurrent). The
/// record only exists if every session's streamed metrics matched the
/// offline replay byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchRecord {
    /// Hardware threads the machine reported at measurement time.
    pub cores: usize,
    /// Worker threads each session's replay pool was capped at.
    pub jobs: usize,
    /// Sessions in the batch.
    pub sessions: usize,
    /// Trace accesses replayed per session (both passes of one session
    /// count once — the session replays the same accesses twice).
    pub accesses_per_session: u64,
    /// Sessions submitted one at a time, each waited to completion.
    pub serial: PassRecord,
    /// All sessions submitted concurrently.
    pub concurrent: PassRecord,
    /// Why the numbers should not be read as a parallel-scaling claim —
    /// set automatically when the measuring box has fewer than 4 cores,
    /// `null`/absent on a real multi-core measurement.
    #[serde(default)]
    pub skip_note: Option<String>,
}

impl ServeBenchRecord {
    /// Serial wall-clock divided by concurrent wall-clock (>1 means
    /// overlapping sessions won), or `0.0` for a degenerate zero-length
    /// concurrent pass.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.concurrent.wall_seconds > 0.0 {
            self.serial.wall_seconds / self.concurrent.wall_seconds
        } else {
            0.0
        }
    }
}

/// Mean / stddev / min over repeated timed iterations — the
/// criterion-style confidence shim (`N` warm iterations are discarded,
/// `N` measured iterations are summarised) without the dependency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// Arithmetic mean across measured iterations.
    pub mean: f64,
    /// Population standard deviation across measured iterations (0.0
    /// for a single sample).
    pub stddev: f64,
    /// Smallest sample — the least-noisy lower bound on throughput.
    pub min: f64,
}

impl IterStats {
    /// Summarises a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "stats of nothing");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        IterStats {
            mean,
            stddev: var.sqrt(),
            min,
        }
    }
}

/// One isolated hot-path stage timed by `bench_throughput --stages`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Stage name: `popcount`, `decode`, `decision`, or `replay`.
    pub stage: String,
    /// Work items processed per measured iteration.
    pub items_per_iter: u64,
    /// What one item is (`lines`, `records`, `decisions`, `accesses`).
    pub unit: String,
    /// Measured iterations summarised below.
    pub iters: u32,
    /// Untimed warm-up iterations run first.
    pub warmup: u32,
    /// Items per second across the measured iterations.
    pub per_second: IterStats,
    /// `per_second.mean` over the baseline end-to-end accesses/sec.
    /// Zero when no baseline was available at measurement time.
    pub speedup_vs_baseline: f64,
}

/// The full `--stages` report committed as `BENCH_simd.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdBenchRecord {
    /// Hardware threads at measurement time (all stages run on one).
    pub cores: usize,
    /// The end-to-end sequential accesses/sec this report compares
    /// against (from `BENCH_parallel.json`), or 0.0 if unavailable.
    pub baseline_accesses_per_second: f64,
    /// Per-stage throughput summaries.
    pub stages: Vec<StageRecord>,
}

impl SimdBenchRecord {
    /// Looks up a stage by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// The largest per-stage speedup over the end-to-end baseline.
    #[must_use]
    pub fn best_speedup(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.speedup_vs_baseline)
            .fold(0.0, f64::max)
    }

    /// Compares a fresh run against this committed record and returns
    /// one message per stage whose fresh mean dropped below
    /// `1.0 - tolerance` of the committed mean. Stages present in only
    /// one record are skipped — the gate protects what was promised,
    /// not the shape of the report.
    #[must_use]
    pub fn regressions_in(&self, fresh: &SimdBenchRecord, tolerance: f64) -> Vec<String> {
        let mut out = Vec::new();
        for committed in &self.stages {
            let Some(measured) = fresh.stage(&committed.stage) else {
                continue;
            };
            let floor = committed.per_second.mean * (1.0 - tolerance);
            if measured.per_second.mean < floor {
                out.push(format!(
                    "stage `{}`: {:.0} {}/s is below the gate floor {:.0} \
                     ({:.0}% of the committed mean {:.0})",
                    committed.stage,
                    measured.per_second.mean,
                    committed.unit,
                    floor,
                    (1.0 - tolerance) * 100.0,
                    committed.per_second.mean,
                ));
            }
        }
        out
    }
}

/// One workload's baseline-vs-adaptive energy comparison, one row of
/// the `--per-workload-baseline` table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRow {
    /// Registry id: `synth/<kernel>` or `import/<stem>`.
    pub id: String,
    /// `synthetic` or `imported` — where the trace came from.
    pub source: String,
    /// Accesses in the workload trace (reads + writes; instruction
    /// fetches count as reads).
    pub accesses: u64,
    /// Read accesses, including instruction fetches.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Cache-line bits written under the baseline (no-encoding) policy.
    /// The energy model charges per bit value written, so this — not a
    /// flip count — is the write-side work both policies share.
    pub bits_written: u64,
    /// Baseline read energy, femtojoules.
    pub baseline_read_fj: f64,
    /// Baseline write energy, femtojoules.
    pub baseline_write_fj: f64,
    /// Baseline total energy, femtojoules.
    pub baseline_total_fj: f64,
    /// Adaptive-encoding total energy, femtojoules.
    pub adaptive_total_fj: f64,
    /// `100 * (baseline_total - adaptive_total) / baseline_total`.
    pub saving_percent: f64,
}

/// The per-workload baseline table written to `BENCH_workloads.json`
/// by `experiments --per-workload-baseline`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadBenchRecord {
    /// Hardware threads the machine reported at measurement time.
    /// Energy numbers are deterministic regardless, but `metrics_lint`
    /// still wants the provenance note on small boxes.
    pub cores: usize,
    /// Encoding policies replayed per workload (baseline + adaptive).
    pub policies_per_workload: usize,
    /// One row per selected workload, sorted by id.
    pub rows: Vec<WorkloadRow>,
    /// Why throughput-adjacent readings from this box should not be
    /// trusted — set automatically when the measuring box has fewer
    /// than 4 cores, `null`/absent otherwise.
    #[serde(default)]
    pub skip_note: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(jobs: usize, wall: f64) -> PassRecord {
        PassRecord {
            jobs,
            wall_seconds: wall,
            accesses_per_second: 1000.0 / wall,
            iters: 1,
            warmup: 1,
        }
    }

    #[test]
    fn speedup_is_seq_over_par() {
        let record = BenchRecord {
            cores: 4,
            workloads: 8,
            policies_per_workload: 2,
            accesses_per_pass: 1000,
            sequential: pass(1, 4.0),
            parallel: pass(4, 1.0),
            skip_note: None,
        };
        assert!((record.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_json() {
        let record = BenchRecord {
            cores: 2,
            workloads: 8,
            policies_per_workload: 2,
            accesses_per_pass: 123_456,
            sequential: pass(1, 2.5),
            parallel: pass(2, 1.5),
            skip_note: None,
        };
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        let back: BenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
    }

    #[test]
    fn old_records_without_iteration_fields_still_parse() {
        let json = r#"{
            "jobs": 1,
            "wall_seconds": 0.5,
            "accesses_per_second": 2000.0
        }"#;
        let pass: PassRecord = serde_json::from_str(json).expect("old shape parses");
        assert_eq!(pass.iters, 1);
        assert_eq!(pass.warmup, 0);
    }

    #[test]
    fn workload_record_round_trips_through_json() {
        let record = WorkloadBenchRecord {
            cores: 2,
            policies_per_workload: 2,
            rows: vec![WorkloadRow {
                id: "synth/pointer_chase".into(),
                source: "synthetic".into(),
                accesses: 1000,
                reads: 700,
                writes: 300,
                bits_written: 153_600,
                baseline_read_fj: 1.0e6,
                baseline_write_fj: 3.0e6,
                baseline_total_fj: 4.0e6,
                adaptive_total_fj: 3.2e6,
                saving_percent: 20.0,
            }],
            skip_note: Some("measured on 2 cores".into()),
        };
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        let back: WorkloadBenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
    }

    #[test]
    fn ws_record_round_trips_and_compares_engines() {
        let record = WsBenchRecord {
            cores: 4,
            jobs: 4,
            skew: 10,
            workloads: 8,
            policies_per_workload: 2,
            accesses_per_pass: 50_000,
            static_pass: pass(4, 3.0),
            ws_pass: pass(4, 1.5),
            skip_note: None,
        };
        assert!((record.speedup() - 2.0).abs() < 1e-12);
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        let back: WsBenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
    }

    #[test]
    fn serve_record_round_trips_and_keeps_skip_notes() {
        let record = ServeBenchRecord {
            cores: 1,
            jobs: 1,
            sessions: 2,
            accesses_per_session: 10_000,
            serial: pass(1, 2.0),
            concurrent: pass(1, 1.0),
            skip_note: Some("measured on a 1-core box".to_string()),
        };
        assert!((record.speedup() - 2.0).abs() < 1e-12);
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        assert!(json.contains("skip_note"));
        let back: ServeBenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
        // A record without the field (the pre-skip_note shape, like the
        // committed BENCH_*.json files) still parses, as None.
        let json = r#"{
            "cores": 4, "jobs": 4, "sessions": 2, "accesses_per_session": 10000,
            "serial": {"jobs": 4, "wall_seconds": 2.0, "accesses_per_second": 500.0},
            "concurrent": {"jobs": 4, "wall_seconds": 1.0, "accesses_per_second": 1000.0}
        }"#;
        let back: ServeBenchRecord = serde_json::from_str(json).expect("old shape parses");
        assert_eq!(back.skip_note, None);
    }

    #[test]
    fn iter_stats_summarise_samples() {
        let stats = IterStats::from_samples(&[10.0, 20.0, 30.0]);
        assert!((stats.mean - 20.0).abs() < 1e-12);
        assert!((stats.min - 10.0).abs() < 1e-12);
        assert!((stats.stddev - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        let single = IterStats::from_samples(&[5.0]);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.mean, single.min);
    }

    fn stage(name: &str, mean: f64) -> StageRecord {
        StageRecord {
            stage: name.to_string(),
            items_per_iter: 1000,
            unit: "items".to_string(),
            iters: 3,
            warmup: 1,
            per_second: IterStats {
                mean,
                stddev: 0.0,
                min: mean,
            },
            speedup_vs_baseline: 1.0,
        }
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let committed = SimdBenchRecord {
            cores: 1,
            baseline_accesses_per_second: 100.0,
            stages: vec![stage("popcount", 1000.0), stage("decode", 500.0)],
        };
        // Fresh run within tolerance on one stage, 50% down on the other.
        let fresh = SimdBenchRecord {
            cores: 1,
            baseline_accesses_per_second: 100.0,
            stages: vec![stage("popcount", 850.0), stage("decode", 250.0)],
        };
        let msgs = committed.regressions_in(&fresh, 0.20);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("decode"), "{msgs:?}");
        // A stage missing from the fresh run is not a regression.
        let partial = SimdBenchRecord {
            cores: 1,
            baseline_accesses_per_second: 100.0,
            stages: vec![stage("popcount", 1000.0)],
        };
        assert!(committed.regressions_in(&partial, 0.20).is_empty());
    }

    #[test]
    fn simd_record_round_trips_and_ranks_stages() {
        let record = SimdBenchRecord {
            cores: 1,
            baseline_accesses_per_second: 10.0,
            stages: vec![stage("popcount", 100.0), stage("replay", 10.0)],
        };
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        let back: SimdBenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
        assert!(back.stage("replay").is_some());
        assert!(back.stage("missing").is_none());
        assert!((record.best_speedup() - 1.0).abs() < 1e-12);
    }
}

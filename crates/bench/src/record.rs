//! Serialisable result records for the throughput benchmark
//! (`bench_throughput` writes one as `BENCH_parallel.json`).

use serde::{Deserialize, Serialize};

/// One timed replay of the suite matrix at a fixed `--jobs` setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassRecord {
    /// Worker threads the pool was capped at.
    pub jobs: usize,
    /// Wall-clock time for the whole matrix, in seconds.
    pub wall_seconds: f64,
    /// Trace accesses replayed per second of wall-clock.
    pub accesses_per_second: f64,
}

/// The full sequential-vs-parallel comparison written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Hardware threads the machine reported at measurement time. A
    /// speedup near 1.0x on `cores: 1` is the honest expectation, not a
    /// regression.
    pub cores: usize,
    /// Workloads in the replayed suite.
    pub workloads: usize,
    /// Encoding policies replayed per workload.
    pub policies_per_workload: usize,
    /// Trace accesses replayed per pass (workload trace lengths x
    /// policies).
    pub accesses_per_pass: u64,
    /// The `--jobs 1` pass.
    pub sequential: PassRecord,
    /// The `--jobs N` pass.
    pub parallel: PassRecord,
}

impl BenchRecord {
    /// Sequential wall-clock divided by parallel wall-clock, or `0.0`
    /// for a degenerate zero-length parallel pass (the ratio must stay
    /// finite so it can be rendered and serialized anywhere).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel.wall_seconds > 0.0 {
            self.sequential.wall_seconds / self.parallel.wall_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(jobs: usize, wall: f64) -> PassRecord {
        PassRecord {
            jobs,
            wall_seconds: wall,
            accesses_per_second: 1000.0 / wall,
        }
    }

    #[test]
    fn speedup_is_seq_over_par() {
        let record = BenchRecord {
            cores: 4,
            workloads: 8,
            policies_per_workload: 2,
            accesses_per_pass: 1000,
            sequential: pass(1, 4.0),
            parallel: pass(4, 1.0),
        };
        assert!((record.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_json() {
        let record = BenchRecord {
            cores: 2,
            workloads: 8,
            policies_per_workload: 2,
            accesses_per_pass: 123_456,
            sequential: pass(1, 2.5),
            parallel: pass(2, 1.5),
        };
        let json = serde_json::to_string_pretty(&record).expect("serialises");
        let back: BenchRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
    }
}

//! Chunk-parallel replay of streamed `.ctr` traces.
//!
//! The pipeline between `cnt-trace` and the simulator:
//!
//! ```text
//! .ctr file ──▶ StreamReader ──▶ [window of raw chunks ≤ budget]
//!                  (seq I/O)          │ pool::par_map
//!                                     ▼
//!                              [decoded chunks, input order]
//!                                     │ in-order consumption
//!                                     ▼
//!                                 CntCache ──▶ EnergyReport
//! ```
//!
//! File I/O stays sequential; decode fans out across the shared worker
//! pool; the simulator consumes chunks strictly in file order. Because
//! windowing is a pure function of the byte budget and [`pool::par_map`]
//! returns results in input order, a replay is **byte-identical**
//! between `--seq` and `--jobs N` — including the metrics stream, whose
//! epoch snapshots carry chunk-ingest counters sampled only at
//! deterministic consumption points. Peak buffered payload never
//! exceeds the reader's configured budget.

use std::io::Read;
use std::path::Path;

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy, EnergyReport};
use cnt_obs::{IngestSnapshot, Snapshot};
use cnt_sim::trace::AccessBatch;
use cnt_sim::AccessError;
use cnt_trace::reader::Fetch;
use cnt_trace::{CorruptionPolicy, RawChunk, ReadOptions, StreamReader, TraceError};

use crate::pool;
use crate::runner::dcache_config;

/// A streamed-replay failure: either the trace stream or the simulation.
#[derive(Debug)]
pub enum StreamError {
    /// The `.ctr` stream failed (I/O, corruption under fail-fast,
    /// truncation, budget overflow).
    Trace(TraceError),
    /// The simulator rejected an access.
    Access(AccessError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Trace(e) => write!(f, "trace stream: {e}"),
            StreamError::Access(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Trace(e) => Some(e),
            StreamError::Access(e) => Some(e),
        }
    }
}

impl From<TraceError> for StreamError {
    fn from(e: TraceError) -> Self {
        StreamError::Trace(e)
    }
}

impl From<AccessError> for StreamError {
    fn from(e: AccessError) -> Self {
        StreamError::Access(e)
    }
}

/// What one streamed replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The final energy report (after a flush).
    pub report: EnergyReport,
    /// Final chunk-ingest counters.
    pub ingest: IngestSnapshot,
    /// Accesses replayed.
    pub accesses: u64,
}

/// Merges read-side reader stats with driver-side consumption counters
/// into the snapshot-ready form.
fn sample_ingest(
    reader_stats: cnt_trace::IngestStats,
    driver: &IngestSnapshot,
    prefetch_buffered: u64,
) -> IngestSnapshot {
    IngestSnapshot {
        chunks_read: reader_stats.chunks_read,
        chunks_consumed: driver.chunks_consumed,
        chunks_skipped: reader_stats.chunks_skipped + driver.chunks_skipped,
        crc_failures: reader_stats.crc_failures,
        decode_failures: reader_stats.decode_failures + driver.decode_failures,
        bytes_read: reader_stats.bytes_read,
        bytes_decoded: driver.bytes_decoded,
        prefetch_buffered,
        peak_buffered_bytes: driver.peak_buffered_bytes,
    }
}

/// Replays a streamed trace through `cache`, decoding chunks on the
/// shared worker pool while the simulator consumes them in order.
///
/// Memory: at most one window of raw payloads plus its decoded accesses
/// are alive at a time, and the raw window never exceeds the reader's
/// byte budget (tracked in `peak_buffered_bytes`).
///
/// Observability: when a metrics sink is installed this emits one
/// [`Snapshot`] per epoch — per-level counters, per-epoch energy deltas,
/// *and* the chunk-ingest block — under the same deterministic replay id
/// scheme as `cnt_obs::replay`.
///
/// # Errors
///
/// [`StreamError::Trace`] for stream damage (per the reader's
/// [`CorruptionPolicy`]) and [`StreamError::Access`] for malformed
/// accesses.
pub fn replay_stream<R: Read>(
    cache: &mut CntCache,
    reader: &mut StreamReader<R>,
) -> Result<(IngestSnapshot, u64), StreamError> {
    let every = cnt_obs::epoch_len();
    let experiment = every.map(|_| cnt_obs::next_replay_path());
    let mut deltas = cnt_obs::DeltaTracker::new();
    let budget = reader.options().budget_bytes;
    let corruption = reader.options().corruption;

    let mut driver = IngestSnapshot::default();
    let mut accesses: u64 = 0;
    let mut epoch: u64 = 0;

    loop {
        // Fill one prefetch window, hard-bounded by the byte budget: a
        // chunk that does not fit the remaining window stays inside the
        // reader (only its frame header was consumed).
        let mut window: Vec<RawChunk> = Vec::new();
        let mut window_bytes = 0usize;
        let mut eof = false;
        loop {
            match reader.next_raw_within(budget - window_bytes)? {
                Fetch::Chunk(raw) => {
                    window_bytes += raw.payload.len();
                    window.push(raw);
                    if window_bytes >= budget {
                        break;
                    }
                }
                Fetch::WouldExceed { chunk, needed } => {
                    if window.is_empty() {
                        // The pending chunk cannot fit even a *fresh*
                        // window, so it will never be replayed. Breaking
                        // out here (as this loop once did) would end the
                        // replay with `Ok`, silently dropping the rest of
                        // the trace; surface it as a budget error instead.
                        return Err(TraceError::ChunkExceedsBudget {
                            chunk,
                            payload_bytes: needed as u64,
                            budget_bytes: budget as u64,
                        }
                        .into());
                    }
                    break;
                }
                Fetch::Eof => {
                    eof = true;
                    break;
                }
            }
        }
        driver.peak_buffered_bytes = driver.peak_buffered_bytes.max(window_bytes as u64);

        if window.is_empty() {
            // An empty window now implies a clean end of stream: the
            // non-fitting-chunk case errored out above.
            debug_assert!(eof);
            break;
        }

        // Decode the whole window on the worker pool into struct-of-arrays
        // batches; results come back in input order, so consumption order
        // equals file order.
        let decoded = pool::par_map(&window, |raw| {
            let mut batch = AccessBatch::with_capacity(raw.access_count as usize);
            raw.decode_batch(&mut batch).map(|()| batch)
        });

        for (position, (raw, result)) in window.iter().zip(decoded).enumerate() {
            let batch = match result {
                Ok(batch) => batch,
                Err(e) => {
                    driver.decode_failures += 1;
                    match corruption {
                        CorruptionPolicy::FailFast => return Err(e.into()),
                        CorruptionPolicy::SkipWithReport => {
                            driver.chunks_skipped += 1;
                            continue;
                        }
                    }
                }
            };
            if every.is_none() {
                // Untraced replay: stream the whole batch through the
                // columnar loop with no per-record epoch bookkeeping.
                cache.run_batch(&batch)?;
                accesses += batch.len() as u64;
            } else {
                for i in 0..batch.len() {
                    cache.access(&batch.get(i))?;
                    accesses += 1;
                    if let (Some(every), Some(experiment)) = (every, experiment.as_deref()) {
                        if accesses.is_multiple_of(every) {
                            // Only chunks strictly after `position` are
                            // buffered-and-unconsumed; the chunk currently
                            // being replayed is partially consumed and must
                            // not inflate the gauge.
                            let buffered = (window.len() - position - 1) as u64;
                            let mut snapshot =
                                Snapshot::capture(cache, experiment, epoch, accesses);
                            snapshot.ingest =
                                Some(sample_ingest(reader.stats(), &driver, buffered));
                            deltas.apply(&mut snapshot);
                            cnt_obs::record(snapshot);
                            epoch += 1;
                        }
                    }
                }
            }
            driver.chunks_consumed += 1;
            driver.bytes_decoded += raw.payload.len() as u64;
        }

        if eof {
            break;
        }
    }

    let final_ingest = sample_ingest(reader.stats(), &driver, 0);
    if let (Some(every), Some(experiment)) = (every, experiment.as_deref()) {
        if !accesses.is_multiple_of(every) || accesses == 0 {
            // Trailing partial epoch (or an empty stream): emit the final
            // state so the last accesses are never silently discarded.
            let mut snapshot = Snapshot::capture(cache, experiment, epoch, accesses);
            snapshot.ingest = Some(final_ingest);
            deltas.apply(&mut snapshot);
            cnt_obs::record(snapshot);
        }
    }

    // Mirror the totals into the process-wide registry so `--metrics-final`
    // exports see ingest activity without a snapshot sink.
    let registry = cnt_obs::registry();
    registry
        .counter("trace.chunks_read")
        .add(final_ingest.chunks_read);
    registry
        .counter("trace.chunks_skipped")
        .add(final_ingest.chunks_skipped);
    registry
        .counter("trace.crc_failures")
        .add(final_ingest.crc_failures);
    registry
        .counter("trace.bytes_decoded")
        .add(final_ingest.bytes_decoded);
    registry.counter("trace.replays").inc();

    Ok((final_ingest, accesses))
}

/// Streams `path` through a fresh cache built from `config`, flushes,
/// and returns the report plus ingest counters.
///
/// # Errors
///
/// As [`replay_stream`], plus I/O errors opening the file.
///
/// # Panics
///
/// Panics if `config` is invalid — a harness bug, not a user error.
pub fn replay_stream_file(
    path: &Path,
    config: CntCacheConfig,
    opts: ReadOptions,
) -> Result<StreamOutcome, StreamError> {
    let file = std::fs::File::open(path).map_err(TraceError::from)?;
    let mut reader = StreamReader::new(std::io::BufReader::new(file), opts)?;
    let mut cache = CntCache::new(config).expect("stream-replay configuration must be valid");
    let (ingest, accesses) = replay_stream(&mut cache, &mut reader)?;
    cache.flush();
    Ok(StreamOutcome {
        report: cache.into_report(),
        ingest,
        accesses,
    })
}

/// Streams `path` under the paper's D-Cache geometry with the given
/// policy.
///
/// # Errors
///
/// As [`replay_stream_file`].
pub fn run_dcache_stream(
    policy: EncodingPolicy,
    path: &Path,
    opts: ReadOptions,
) -> Result<StreamOutcome, StreamError> {
    replay_stream_file(path, dcache_config("L1D", policy), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dcache;
    use cnt_sim::trace::{MemoryAccess, Trace};
    use cnt_sim::Address;
    use cnt_trace::pack_trace;

    fn sample_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                let addr = Address::new(0x4000 + (i % 300) * 8);
                if i % 5 == 0 {
                    MemoryAccess::write(addr, 8, i.wrapping_mul(0x0101_0101_0101_0101))
                } else {
                    MemoryAccess::read(addr, 8)
                }
            })
            .collect()
    }

    fn packed(trace: &Trace, chunk_accesses: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        pack_trace(trace, &mut bytes, chunk_accesses).expect("packs");
        bytes
    }

    #[test]
    fn streamed_replay_matches_in_memory_replay() {
        let trace = sample_trace(5_000);
        let bytes = packed(&trace, 128);
        let expected = run_dcache(EncodingPolicy::adaptive_default(), &trace);

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 4 * 1024, // forces many windows
                corruption: CorruptionPolicy::FailFast,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let (ingest, accesses) = replay_stream(&mut cache, &mut reader).expect("streams");
        cache.flush();
        let report = cache.into_report();

        assert_eq!(accesses, 5_000);
        assert_eq!(report, expected);
        assert!(ingest.peak_buffered_bytes <= 4 * 1024, "budget respected");
        assert_eq!(ingest.chunks_consumed, ingest.chunks_read);
        assert_eq!(ingest.bytes_decoded, ingest.bytes_read);
    }

    #[test]
    fn skip_policy_replays_the_intact_remainder() {
        let trace = sample_trace(1_000);
        let mut bytes = packed(&trace, 100);
        // Flip a bit somewhere in the middle of the file body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 64 * 1024,
                corruption: CorruptionPolicy::SkipWithReport,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let (ingest, accesses) = replay_stream(&mut cache, &mut reader).expect("skips");
        assert!(ingest.chunks_skipped >= 1);
        assert!(accesses < 1_000, "the damaged chunk's accesses are gone");
        assert_eq!(
            accesses,
            1_000 - 100 * ingest.chunks_skipped,
            "every skip drops exactly one chunk of accesses"
        );
    }

    #[test]
    fn oversized_chunk_errors_instead_of_truncating() {
        // One giant chunk that can never fit the byte budget. The replay
        // must surface a budget error — ending with `Ok` here would mean
        // the trace was silently truncated to zero accesses.
        let trace = sample_trace(1_000);
        let bytes = packed(&trace, 1_000);
        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 256,
                corruption: CorruptionPolicy::FailFast,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let err = replay_stream(&mut cache, &mut reader).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Trace(TraceError::ChunkExceedsBudget { chunk: 0, .. })
            ),
            "expected a budget error, got {err}"
        );
    }

    #[test]
    fn parallel_and_sequential_streams_are_identical() {
        let trace = sample_trace(3_000);
        let bytes = packed(&trace, 64);
        let replay = |jobs: usize| {
            pool::set_jobs(jobs);
            let mut reader = StreamReader::new(
                &bytes[..],
                ReadOptions {
                    budget_bytes: 2 * 1024,
                    corruption: CorruptionPolicy::FailFast,
                },
            )
            .expect("opens");
            let mut cache = CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default()))
                .expect("valid");
            let outcome = replay_stream(&mut cache, &mut reader).expect("streams");
            cache.flush();
            (outcome, cache.into_report())
        };
        let seq = replay(1);
        let par = replay(4);
        pool::set_jobs(pool::default_jobs());
        assert_eq!(seq, par);
    }
}

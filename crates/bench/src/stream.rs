//! Chunk-parallel replay of streamed `.ctr` traces.
//!
//! The pipeline between `cnt-trace` and the simulator:
//!
//! ```text
//! .ctr file ──▶ StreamReader ──▶ [window of raw chunks ≤ budget]
//!                  (seq I/O)          │ pool::par_map
//!                                     ▼
//!                              [decoded chunks, input order]
//!                                     │ in-order consumption
//!                                     ▼
//!                                 CntCache ──▶ EnergyReport
//! ```
//!
//! File I/O stays sequential; decode fans out across the shared worker
//! pool; the simulator consumes chunks strictly in file order. Because
//! windowing is a pure function of the byte budget and [`pool::par_map`]
//! returns results in input order, a replay is **byte-identical**
//! between `--seq` and `--jobs N` — including the metrics stream, whose
//! epoch snapshots carry chunk-ingest counters sampled only at
//! deterministic consumption points. Peak buffered payload never
//! exceeds the reader's configured budget.

use std::io::Read;
use std::path::Path;

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy, EnergyReport};
use cnt_energy::EnergyBreakdown;
use cnt_obs::{IngestSnapshot, Snapshot};
use cnt_sim::trace::AccessBatch;
use cnt_sim::AccessError;
use cnt_trace::reader::Fetch;
use cnt_trace::{
    CheckpointError, CorruptionPolicy, RawChunk, ReadOptions, StreamReader, TraceError,
};
use serde::{Deserialize, Serialize};

use crate::pool;
use crate::runner::dcache_config;

/// A streamed-replay failure: either the trace stream or the simulation.
#[derive(Debug)]
pub enum StreamError {
    /// The `.ctr` stream failed (I/O, corruption under fail-fast,
    /// truncation, budget overflow).
    Trace(TraceError),
    /// The simulator rejected an access.
    Access(AccessError),
    /// A periodic checkpoint write failed.
    Checkpoint(CheckpointError),
    /// The replay was cancelled through its [`CancelToken`]. Carries how
    /// far the replay got so the driver can report (and clean up) the
    /// abandoned work precisely.
    Cancelled {
        /// Chunks fully consumed before cancellation was observed.
        chunk: u64,
        /// Accesses replayed before cancellation was observed.
        accesses: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Trace(e) => write!(f, "trace stream: {e}"),
            StreamError::Access(e) => write!(f, "replay: {e}"),
            StreamError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            StreamError::Cancelled { chunk, accesses } => write!(
                f,
                "replay cancelled after {chunk} chunks ({accesses} accesses)"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Trace(e) => Some(e),
            StreamError::Access(e) => Some(e),
            StreamError::Checkpoint(e) => Some(e),
            StreamError::Cancelled { .. } => None,
        }
    }
}

/// A cooperative cancellation handle for long replays. Cloneable and
/// thread-safe: a control thread (e.g. a server connection pump that
/// just read a `Cancel` frame or lost its client) flips the token, and
/// the replay observes it at its next deterministic check point — the
/// window boundary and each chunk-consumption step — then returns
/// [`StreamError::Cancelled`] instead of touching further input.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> Self {
        StreamError::Checkpoint(e)
    }
}

impl From<TraceError> for StreamError {
    fn from(e: TraceError) -> Self {
        StreamError::Trace(e)
    }
}

impl From<AccessError> for StreamError {
    fn from(e: AccessError) -> Self {
        StreamError::Access(e)
    }
}

/// What one streamed replay produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamOutcome {
    /// The final energy report (after a flush).
    pub report: EnergyReport,
    /// Final chunk-ingest counters.
    pub ingest: IngestSnapshot,
    /// Accesses replayed.
    pub accesses: u64,
}

/// Driver-side replay state that must survive a checkpoint — everything
/// [`replay_stream`] accumulates outside the cache itself. Captured at a
/// window boundary (nothing buffered, nothing in flight), handed to the
/// checkpoint hook, and fed back via [`replay_stream_resumable`] after a
/// restart.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayCursor {
    /// Chunks fully consumed. Checkpoints are taken only at window
    /// boundaries under fail-fast corruption handling, so this equals
    /// the reader cursor: `StreamReader::seek_to_chunk(chunk)` puts a
    /// fresh reader exactly where this replay left off.
    pub chunk: u64,
    /// Accesses replayed so far (cumulative).
    pub accesses: u64,
    /// Next snapshot epoch index.
    pub epoch: u64,
    /// Driver-side ingest counters (consumption, decoded bytes, peaks).
    pub driver: IngestSnapshot,
    /// The replay's deterministic experiment id (`None` when no metrics
    /// sink was installed).
    pub experiment: Option<String>,
    /// Per-level cumulative energy at the last emitted epoch — the
    /// [`cnt_obs::DeltaTracker`] seed, so a resumed replay's next
    /// per-epoch delta subtracts the right baseline.
    pub delta_prev: Vec<EnergyBreakdown>,
}

/// Periodic-checkpoint policy for [`replay_stream_resumable`].
pub struct CheckpointEvery<'a> {
    /// Minimum chunks between checkpoint writes; the hook fires at the
    /// first window boundary at least this many chunks after the last
    /// write (never mid-window — nothing buffered is ever checkpointed).
    pub chunks: u64,
    /// Persists one checkpoint. Receives the cache, the cursor, and the
    /// reader's trace-identity digest at the cursor (for the checkpoint
    /// manifest). An error aborts the replay.
    #[allow(clippy::type_complexity)]
    pub write: &'a mut dyn FnMut(&CntCache, &ReplayCursor, u64) -> Result<(), CheckpointError>,
}

/// Merges read-side reader stats with driver-side consumption counters
/// into the snapshot-ready form.
fn sample_ingest(
    reader_stats: cnt_trace::IngestStats,
    driver: &IngestSnapshot,
    prefetch_buffered: u64,
) -> IngestSnapshot {
    IngestSnapshot {
        chunks_read: reader_stats.chunks_read,
        chunks_consumed: driver.chunks_consumed,
        chunks_skipped: reader_stats.chunks_skipped + driver.chunks_skipped,
        crc_failures: reader_stats.crc_failures,
        decode_failures: reader_stats.decode_failures + driver.decode_failures,
        bytes_read: reader_stats.bytes_read,
        bytes_decoded: driver.bytes_decoded,
        prefetch_buffered,
        peak_buffered_bytes: driver.peak_buffered_bytes,
    }
}

/// Replays a streamed trace through `cache`, decoding chunks on the
/// shared worker pool while the simulator consumes them in order.
///
/// Memory: at most one window of raw payloads plus its decoded accesses
/// are alive at a time, and the raw window never exceeds the reader's
/// byte budget (tracked in `peak_buffered_bytes`).
///
/// Observability: when a metrics sink is installed this emits one
/// [`Snapshot`] per epoch — per-level counters, per-epoch energy deltas,
/// *and* the chunk-ingest block — under the same deterministic replay id
/// scheme as `cnt_obs::replay`.
///
/// # Errors
///
/// [`StreamError::Trace`] for stream damage (per the reader's
/// [`CorruptionPolicy`]) and [`StreamError::Access`] for malformed
/// accesses.
pub fn replay_stream<R: Read>(
    cache: &mut CntCache,
    reader: &mut StreamReader<R>,
) -> Result<(IngestSnapshot, u64), StreamError> {
    replay_stream_resumable(cache, reader, None, None, None)
}

/// [`replay_stream`] with checkpoint/resume support.
///
/// `resume` continues a replay from a [`ReplayCursor`] saved by an
/// earlier checkpoint: the caller must have restored `cache` from the
/// same checkpoint and seeked `reader` to `resume.chunk` (via
/// [`StreamReader::seek_to_chunk`]). Accesses, epochs, ingest counters,
/// and energy deltas all continue from the cursor, so the resumed run's
/// outputs are byte-identical to an uninterrupted one.
///
/// `checkpoint` persists the replay periodically at window boundaries.
/// Checkpointing requires [`CorruptionPolicy::FailFast`]: under
/// skip-with-report the consumed-chunk count diverges from the reader
/// cursor and a resume could silently replay the wrong suffix.
///
/// `cancel` makes the replay abandonable from another thread: the token
/// is polled before each window fill and before each chunk is consumed,
/// and a set token surfaces as [`StreamError::Cancelled`] without
/// reading further input — the isolation primitive a multi-tenant
/// server needs to tear one session down without touching the rest.
///
/// # Errors
///
/// As [`replay_stream`], plus [`StreamError::Checkpoint`] when the hook
/// fails and [`StreamError::Cancelled`] when `cancel` fires.
///
/// # Panics
///
/// Panics if `checkpoint` is combined with
/// [`CorruptionPolicy::SkipWithReport`], or if `resume` is given but the
/// reader is not positioned at the cursor — both are driver bugs, not
/// runtime conditions.
pub fn replay_stream_resumable<R: Read>(
    cache: &mut CntCache,
    reader: &mut StreamReader<R>,
    resume: Option<ReplayCursor>,
    mut checkpoint: Option<CheckpointEvery<'_>>,
    cancel: Option<&CancelToken>,
) -> Result<(IngestSnapshot, u64), StreamError> {
    let every = cnt_obs::epoch_len();
    assert!(
        checkpoint.is_none() || reader.options().corruption == CorruptionPolicy::FailFast,
        "checkpointing requires fail-fast corruption handling"
    );
    let resuming = resume.is_some();
    let cursor = resume.unwrap_or_default();
    if resuming {
        assert_eq!(
            reader.cursor(),
            cursor.chunk,
            "reader must be seeked to the checkpoint cursor before resuming"
        );
    }
    let experiment = if resuming {
        cursor.experiment.clone()
    } else {
        every.map(|_| cnt_obs::next_replay_path())
    };
    let mut deltas = cnt_obs::DeltaTracker::seeded(cursor.delta_prev);
    let budget = reader.options().budget_bytes;
    let corruption = reader.options().corruption;

    let mut driver = cursor.driver;
    let mut accesses: u64 = cursor.accesses;
    let mut epoch: u64 = cursor.epoch;
    let mut last_checkpoint: u64 = cursor.chunk;

    let cancelled = |driver: &IngestSnapshot, accesses: u64| StreamError::Cancelled {
        chunk: driver.chunks_consumed,
        accesses,
    };

    loop {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(cancelled(&driver, accesses));
        }
        // Fill one prefetch window, hard-bounded by the byte budget: a
        // chunk that does not fit the remaining window stays inside the
        // reader (only its frame header was consumed).
        let mut window: Vec<RawChunk> = Vec::new();
        let mut window_bytes = 0usize;
        let mut eof = false;
        loop {
            match reader.next_raw_within(budget - window_bytes)? {
                Fetch::Chunk(raw) => {
                    window_bytes += raw.payload.len();
                    window.push(raw);
                    if window_bytes >= budget {
                        break;
                    }
                }
                Fetch::WouldExceed { chunk, needed } => {
                    if window.is_empty() {
                        // The pending chunk cannot fit even a *fresh*
                        // window, so it will never be replayed. Breaking
                        // out here (as this loop once did) would end the
                        // replay with `Ok`, silently dropping the rest of
                        // the trace; surface it as a budget error instead.
                        return Err(TraceError::ChunkExceedsBudget {
                            chunk,
                            payload_bytes: needed as u64,
                            budget_bytes: budget as u64,
                        }
                        .into());
                    }
                    break;
                }
                Fetch::Eof => {
                    eof = true;
                    break;
                }
            }
        }
        driver.peak_buffered_bytes = driver.peak_buffered_bytes.max(window_bytes as u64);

        if window.is_empty() {
            // An empty window now implies a clean end of stream: the
            // non-fitting-chunk case errored out above.
            debug_assert!(eof);
            break;
        }

        // Decode the whole window on the worker pool into struct-of-arrays
        // batches; results come back in input order, so consumption order
        // equals file order.
        let decoded = pool::par_map(&window, |raw| {
            let mut batch = AccessBatch::with_capacity(raw.access_count as usize);
            raw.decode_batch(&mut batch).map(|()| batch)
        });

        for (position, (raw, result)) in window.iter().zip(decoded).enumerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(cancelled(&driver, accesses));
            }
            let batch = match result {
                Ok(batch) => batch,
                Err(e) => {
                    driver.decode_failures += 1;
                    match corruption {
                        CorruptionPolicy::FailFast => return Err(e.into()),
                        CorruptionPolicy::SkipWithReport => {
                            driver.chunks_skipped += 1;
                            continue;
                        }
                    }
                }
            };
            if every.is_none() {
                // Untraced replay: stream the whole batch through the
                // columnar loop with no per-record epoch bookkeeping.
                cache.run_batch(&batch)?;
                accesses += batch.len() as u64;
            } else {
                for i in 0..batch.len() {
                    cache.access(&batch.get(i))?;
                    accesses += 1;
                    if let (Some(every), Some(experiment)) = (every, experiment.as_deref()) {
                        if accesses.is_multiple_of(every) {
                            // Only chunks strictly after `position` are
                            // buffered-and-unconsumed; the chunk currently
                            // being replayed is partially consumed and must
                            // not inflate the gauge.
                            let buffered = (window.len() - position - 1) as u64;
                            let mut snapshot =
                                Snapshot::capture(cache, experiment, epoch, accesses);
                            snapshot.ingest =
                                Some(sample_ingest(reader.stats(), &driver, buffered));
                            deltas.apply(&mut snapshot);
                            cnt_obs::record(snapshot);
                            epoch += 1;
                        }
                    }
                }
            }
            driver.chunks_consumed += 1;
            driver.bytes_decoded += raw.payload.len() as u64;
        }

        // Window boundary: everything fetched is consumed, so the reader
        // cursor is the exact resume point. Write a checkpoint when the
        // interval has elapsed (skipped at EOF — the run is about to
        // finish and the final state supersedes any checkpoint).
        if let Some(ck) = checkpoint.as_mut() {
            if !eof && reader.cursor() - last_checkpoint >= ck.chunks {
                let state = ReplayCursor {
                    chunk: reader.cursor(),
                    accesses,
                    epoch,
                    driver,
                    experiment: experiment.clone(),
                    delta_prev: deltas.state().to_vec(),
                };
                (ck.write)(cache, &state, reader.identity())?;
                last_checkpoint = state.chunk;
            }
        }

        if eof {
            break;
        }
    }

    let final_ingest = sample_ingest(reader.stats(), &driver, 0);
    if let (Some(every), Some(experiment)) = (every, experiment.as_deref()) {
        if !accesses.is_multiple_of(every) || accesses == 0 {
            // Trailing partial epoch (or an empty stream): emit the final
            // state so the last accesses are never silently discarded.
            let mut snapshot = Snapshot::capture(cache, experiment, epoch, accesses);
            snapshot.ingest = Some(final_ingest);
            deltas.apply(&mut snapshot);
            cnt_obs::record(snapshot);
        }
    }

    // Mirror the totals into the process-wide registry so `--metrics-final`
    // exports see ingest activity without a snapshot sink.
    let registry = cnt_obs::registry();
    registry
        .counter("trace.chunks_read")
        .add(final_ingest.chunks_read);
    registry
        .counter("trace.chunks_skipped")
        .add(final_ingest.chunks_skipped);
    registry
        .counter("trace.crc_failures")
        .add(final_ingest.crc_failures);
    registry
        .counter("trace.bytes_decoded")
        .add(final_ingest.bytes_decoded);
    registry.counter("trace.replays").inc();

    Ok((final_ingest, accesses))
}

/// Streams `path` through a fresh cache built from `config`, flushes,
/// and returns the report plus ingest counters.
///
/// # Errors
///
/// As [`replay_stream`], plus I/O errors opening the file.
///
/// # Panics
///
/// Panics if `config` is invalid — a harness bug, not a user error.
pub fn replay_stream_file(
    path: &Path,
    config: CntCacheConfig,
    opts: ReadOptions,
) -> Result<StreamOutcome, StreamError> {
    let file = std::fs::File::open(path).map_err(TraceError::from)?;
    let mut reader = StreamReader::new(std::io::BufReader::new(file), opts)?;
    let mut cache = CntCache::new(config).expect("stream-replay configuration must be valid");
    let (ingest, accesses) = replay_stream(&mut cache, &mut reader)?;
    cache.flush();
    Ok(StreamOutcome {
        report: cache.into_report(),
        ingest,
        accesses,
    })
}

/// Streams `path` under the paper's D-Cache geometry with the given
/// policy.
///
/// # Errors
///
/// As [`replay_stream_file`].
pub fn run_dcache_stream(
    policy: EncodingPolicy,
    path: &Path,
    opts: ReadOptions,
) -> Result<StreamOutcome, StreamError> {
    replay_stream_file(path, dcache_config("L1D", policy), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dcache;
    use cnt_sim::trace::{MemoryAccess, Trace};
    use cnt_sim::Address;
    use cnt_trace::pack_trace;

    fn sample_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                let addr = Address::new(0x4000 + (i % 300) * 8);
                if i % 5 == 0 {
                    MemoryAccess::write(addr, 8, i.wrapping_mul(0x0101_0101_0101_0101))
                } else {
                    MemoryAccess::read(addr, 8)
                }
            })
            .collect()
    }

    fn packed(trace: &Trace, chunk_accesses: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        pack_trace(trace, &mut bytes, chunk_accesses).expect("packs");
        bytes
    }

    #[test]
    fn streamed_replay_matches_in_memory_replay() {
        let trace = sample_trace(5_000);
        let bytes = packed(&trace, 128);
        let expected = run_dcache(EncodingPolicy::adaptive_default(), &trace);

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 4 * 1024, // forces many windows
                corruption: CorruptionPolicy::FailFast,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let (ingest, accesses) = replay_stream(&mut cache, &mut reader).expect("streams");
        cache.flush();
        let report = cache.into_report();

        assert_eq!(accesses, 5_000);
        assert_eq!(report, expected);
        assert!(ingest.peak_buffered_bytes <= 4 * 1024, "budget respected");
        assert_eq!(ingest.chunks_consumed, ingest.chunks_read);
        assert_eq!(ingest.bytes_decoded, ingest.bytes_read);
    }

    #[test]
    fn skip_policy_replays_the_intact_remainder() {
        let trace = sample_trace(1_000);
        let mut bytes = packed(&trace, 100);
        // Flip a bit somewhere in the middle of the file body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 64 * 1024,
                corruption: CorruptionPolicy::SkipWithReport,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let (ingest, accesses) = replay_stream(&mut cache, &mut reader).expect("skips");
        assert!(ingest.chunks_skipped >= 1);
        assert!(accesses < 1_000, "the damaged chunk's accesses are gone");
        assert_eq!(
            accesses,
            1_000 - 100 * ingest.chunks_skipped,
            "every skip drops exactly one chunk of accesses"
        );
    }

    #[test]
    fn oversized_chunk_errors_instead_of_truncating() {
        // One giant chunk that can never fit the byte budget. The replay
        // must surface a budget error — ending with `Ok` here would mean
        // the trace was silently truncated to zero accesses.
        let trace = sample_trace(1_000);
        let bytes = packed(&trace, 1_000);
        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                budget_bytes: 256,
                corruption: CorruptionPolicy::FailFast,
            },
        )
        .expect("opens");
        let mut cache =
            CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default())).expect("valid");
        let err = replay_stream(&mut cache, &mut reader).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Trace(TraceError::ChunkExceedsBudget { chunk: 0, .. })
            ),
            "expected a budget error, got {err}"
        );
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        use cnt_trace::Checkpointable;

        let trace = sample_trace(4_000);
        let bytes = packed(&trace, 64);
        let opts = ReadOptions {
            budget_bytes: 2 * 1024,
            corruption: CorruptionPolicy::FailFast,
        };
        let config = dcache_config("L1D", EncodingPolicy::adaptive_default());

        // Uninterrupted control run.
        let mut reader = StreamReader::new(std::io::Cursor::new(&bytes[..]), opts).expect("opens");
        let mut cache = CntCache::new(config.clone()).expect("valid");
        let control = replay_stream(&mut cache, &mut reader).expect("streams");
        cache.flush();
        let control_report = cache.into_report();
        let control_identity = reader.identity();

        // Checkpointed run: save the first checkpoint that fires, then let
        // the run finish — checkpointing must not perturb the outcome.
        let mut saved: Option<(Vec<u8>, ReplayCursor, u64)> = None;
        let mut hook = |cache: &CntCache, cursor: &ReplayCursor, identity: u64| {
            if saved.is_none() {
                saved = Some((cache.encode_state()?, cursor.clone(), identity));
            }
            Ok(())
        };
        let mut reader = StreamReader::new(std::io::Cursor::new(&bytes[..]), opts).expect("opens");
        let mut cache = CntCache::new(config.clone()).expect("valid");
        let observed = replay_stream_resumable(
            &mut cache,
            &mut reader,
            None,
            Some(CheckpointEvery {
                chunks: 10,
                write: &mut hook,
            }),
            None,
        )
        .expect("streams");
        cache.flush();
        assert_eq!(observed, control, "checkpointing perturbed the replay");
        assert_eq!(cache.into_report(), control_report);

        let (state, cursor, mid_identity) = saved.expect("a checkpoint fired mid-stream");
        assert!(cursor.chunk >= 10, "checkpoint landed before the interval");
        assert!(cursor.accesses < 4_000, "checkpoint landed at the end");

        // Kill-and-resume at the checkpoint, once sequential and once on
        // the pool: fresh process state, seeked reader, restored cache.
        let resume = |jobs: usize| {
            pool::set_jobs(jobs);
            let mut reader =
                StreamReader::new(std::io::Cursor::new(&bytes[..]), opts).expect("opens");
            reader.seek_to_chunk(cursor.chunk).expect("seeks");
            assert_eq!(
                reader.identity(),
                mid_identity,
                "seek reconstructed a different trace identity"
            );
            let mut cache = CntCache::new(config.clone()).expect("valid");
            cache.restore_state(&state).expect("restores");
            let outcome =
                replay_stream_resumable(&mut cache, &mut reader, Some(cursor.clone()), None, None)
                    .expect("resumes");
            cache.flush();
            (outcome, cache.into_report(), reader.identity())
        };
        let seq = resume(1);
        let par = resume(4);
        pool::set_jobs(pool::default_jobs());
        assert_eq!(seq.0, control, "resumed ingest/accesses diverged");
        assert_eq!(seq.1, control_report, "resumed report diverged");
        assert_eq!(seq.2, control_identity, "resumed identity diverged");
        assert_eq!(seq, par, "resume is jobs-sensitive");
    }

    #[test]
    fn cancel_token_aborts_with_progress_and_pre_set_token_replays_nothing() {
        let trace = sample_trace(2_000);
        let bytes = packed(&trace, 64);
        let opts = ReadOptions {
            budget_bytes: 1024,
            corruption: CorruptionPolicy::FailFast,
        };
        let config = dcache_config("L1D", EncodingPolicy::adaptive_default());

        // A token cancelled before the replay starts stops it at the very
        // first check, with zero progress consumed.
        let token = CancelToken::new();
        token.cancel();
        let mut reader = StreamReader::new(&bytes[..], opts).expect("opens");
        let mut cache = CntCache::new(config.clone()).expect("valid");
        let err = replay_stream_resumable(&mut cache, &mut reader, None, None, Some(&token))
            .expect_err("cancelled");
        assert!(
            matches!(
                err,
                StreamError::Cancelled {
                    chunk: 0,
                    accesses: 0
                }
            ),
            "expected zero-progress cancellation, got {err}"
        );

        // Cancelling from the checkpoint hook (a deterministic mid-replay
        // point) aborts with partial progress.
        let token = CancelToken::new();
        let hook_token = token.clone();
        let mut hook = move |_: &CntCache, _: &ReplayCursor, _: u64| {
            hook_token.cancel();
            Ok(())
        };
        let mut reader = StreamReader::new(&bytes[..], opts).expect("opens");
        let mut cache = CntCache::new(config).expect("valid");
        let err = replay_stream_resumable(
            &mut cache,
            &mut reader,
            None,
            Some(CheckpointEvery {
                chunks: 4,
                write: &mut hook,
            }),
            Some(&token),
        )
        .expect_err("cancelled");
        match err {
            StreamError::Cancelled { chunk, accesses } => {
                assert!(chunk > 0, "cancellation observed before any progress");
                assert!(accesses > 0 && accesses < 2_000, "partial progress");
            }
            other => panic!("expected cancellation, got {other}"),
        }
    }

    #[test]
    fn parallel_and_sequential_streams_are_identical() {
        let trace = sample_trace(3_000);
        let bytes = packed(&trace, 64);
        let replay = |jobs: usize| {
            pool::set_jobs(jobs);
            let mut reader = StreamReader::new(
                &bytes[..],
                ReadOptions {
                    budget_bytes: 2 * 1024,
                    corruption: CorruptionPolicy::FailFast,
                },
            )
            .expect("opens");
            let mut cache = CntCache::new(dcache_config("L1D", EncodingPolicy::adaptive_default()))
                .expect("valid");
            let outcome = replay_stream(&mut cache, &mut reader).expect("streams");
            cache.flush();
            (outcome, cache.into_report())
        };
        let seq = replay(1);
        let par = replay(4);
        pool::set_jobs(pool::default_jobs());
        assert_eq!(seq, par);
    }
}

//! Thread-local session sinks — per-session snapshot isolation for
//! multi-tenant replay servers.
//!
//! The process-wide sink in [`crate::sink`] is the right tool for a
//! single replay driver, but a server replaying many tenants at once
//! must keep their metrics streams apart: session A's epochs must never
//! interleave into session B's JSONL, and each session's replay ids
//! must start from `r0000` exactly as an offline run's would. Both fall
//! out of one primitive: a **thread-local** sink. A server runs each
//! session on its own thread; installing a local sink there captures
//! that session's snapshots (and only those), while the thread-local
//! scope stack in [`crate::scope`] already restarts id allocation per
//! thread. Replays on threads with no local sink keep using the global
//! sink, so existing drivers are unaffected.
//!
//! A local sink can also **stream**: an optional `on_record` callback
//! observes every snapshot as it is recorded, in emission order, which
//! is what lets a replay server push per-epoch observations down a
//! socket while the replay is still running. Emission order within one
//! session thread is (experiment, epoch)-sorted already — replays run
//! sequentially on the session thread and epochs ascend — so the
//! streamed order matches what [`crate::sink::drain`] would have
//! produced.

use std::cell::{Cell, RefCell};

use crate::snapshot::Snapshot;

thread_local! {
    /// Cheap mirror of `LOCAL.is_some()` so the hot-path enablement
    /// check stays a flag read (no `RefCell` borrow bookkeeping).
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static LOCAL: RefCell<Option<LocalSink>> = const { RefCell::new(None) };
}

/// Snapshot observer invoked synchronously on every local record.
pub type OnRecord = Box<dyn FnMut(&Snapshot)>;

struct LocalSink {
    every: u64,
    snapshots: Vec<Snapshot>,
    on_record: Option<OnRecord>,
}

/// Keeps a thread-local sink installed; dropping it uninstalls the sink
/// and discards anything still buffered. Call [`LocalSinkGuard::finish`]
/// instead to take the collected snapshots.
///
/// The guard is deliberately `!Send`: the sink lives in this thread's
/// storage and must be torn down by the thread that installed it.
pub struct LocalSinkGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl LocalSinkGuard {
    /// Uninstalls the sink and returns everything it recorded, sorted by
    /// (experiment id, epoch) — the same ordering contract as
    /// [`crate::sink::drain`].
    #[must_use]
    pub fn finish(self) -> Vec<Snapshot> {
        let mut snapshots = LOCAL
            .with(|slot| slot.borrow_mut().take())
            .map(|sink| sink.snapshots)
            .unwrap_or_default();
        ACTIVE.with(|flag| flag.set(false));
        snapshots.sort_by(|a, b| a.experiment.cmp(&b.experiment).then(a.epoch.cmp(&b.epoch)));
        snapshots
    }
}

impl Drop for LocalSinkGuard {
    fn drop(&mut self) {
        LOCAL.with(|slot| slot.borrow_mut().take());
        ACTIVE.with(|flag| flag.set(false));
    }
}

/// Installs a sink on the **current thread** with an epoch of `every`
/// accesses. While installed, this thread's [`crate::record`] calls land
/// here instead of the global sink, and [`crate::epoch_len`] reports
/// `every` regardless of the global configuration.
///
/// `on_record` (if given) observes each snapshot synchronously at record
/// time, before it is buffered. The callback must not call back into
/// this module (the sink is borrowed while it runs).
///
/// # Panics
///
/// Panics if `every` is zero or a local sink is already installed on
/// this thread — both driver bugs.
pub fn install_local(every: u64, on_record: Option<OnRecord>) -> LocalSinkGuard {
    assert!(every > 0, "epoch length must be positive");
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        assert!(
            slot.is_none(),
            "a local sink is already installed on this thread"
        );
        *slot = Some(LocalSink {
            every,
            snapshots: Vec::new(),
            on_record,
        });
    });
    ACTIVE.with(|flag| flag.set(true));
    LocalSinkGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// `true` when the current thread has a local sink installed.
#[must_use]
pub fn local_installed() -> bool {
    ACTIVE.with(Cell::get)
}

/// The local sink's epoch length, or `None` when this thread has none.
pub(crate) fn local_epoch_len() -> Option<u64> {
    if !local_installed() {
        return None;
    }
    LOCAL.with(|slot| slot.borrow().as_ref().map(|sink| sink.every))
}

/// Offers a snapshot to the local sink. Returns `true` when consumed;
/// `false` sends the caller back to the global sink.
pub(crate) fn local_record(snapshot: Snapshot) -> bool {
    if !local_installed() {
        return false;
    }
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(sink) = slot.as_mut() else {
            return false;
        };
        if let Some(observer) = sink.on_record.as_mut() {
            observer(&snapshot);
        }
        sink.snapshots.push(snapshot);
        true
    })
}

/// A copy of everything the local sink recorded so far, sorted by
/// (experiment id, epoch) — the session-scoped analogue of
/// [`crate::sink::pending`], used when checkpointing one session without
/// touching the others. Empty when no local sink is installed.
#[must_use]
pub fn local_pending() -> Vec<Snapshot> {
    let mut snapshots = LOCAL.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|sink| sink.snapshots.clone())
            .unwrap_or_default()
    });
    snapshots.sort_by(|a, b| a.experiment.cmp(&b.experiment).then(a.epoch.cmp(&b.epoch)));
    snapshots
}

/// Seeds the local sink with snapshots saved by [`local_pending`] before
/// a checkpoint — the resume-side counterpart. The preloaded snapshots
/// are **not** replayed through `on_record`: a resumed session streams
/// only the epochs it newly produces, while [`LocalSinkGuard::finish`]
/// still returns the complete merged stream.
///
/// # Panics
///
/// Panics if no local sink is installed on this thread (a driver bug:
/// preloading into the void would silently drop the pre-kill epochs).
pub fn preload_local(snapshots: Vec<Snapshot>) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let sink = slot
            .as_mut()
            .expect("preload_local requires an installed local sink");
        sink.snapshots.extend(snapshots);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_sink_lifecycle_and_streaming() {
        assert!(!local_installed());
        assert_eq!(local_epoch_len(), None);
        assert!(
            !local_record(Snapshot::empty("x", 0, 1)),
            "no sink: refused"
        );

        let streamed = std::rc::Rc::new(RefCell::new(Vec::new()));
        let observer = std::rc::Rc::clone(&streamed);
        let guard = install_local(
            50,
            Some(Box::new(move |s: &Snapshot| {
                observer.borrow_mut().push((s.experiment.clone(), s.epoch));
            })),
        );
        assert!(local_installed());
        assert_eq!(local_epoch_len(), Some(50));

        assert!(local_record(Snapshot::empty("a/r0000", 0, 10)));
        assert!(local_record(Snapshot::empty("a/r0000", 1, 20)));
        let saved = local_pending();
        assert_eq!(saved.len(), 2, "pending copies without clearing");

        let collected = guard.finish();
        assert_eq!(collected.len(), 2);
        assert!(!local_installed(), "finish uninstalls");
        assert_eq!(
            *streamed.borrow(),
            vec![("a/r0000".to_string(), 0), ("a/r0000".to_string(), 1)],
            "observer saw each snapshot in emission order"
        );

        // Resume path: preload does not re-stream, but finish merges.
        let guard = install_local(50, None);
        preload_local(saved);
        assert!(local_record(Snapshot::empty("a/r0000", 2, 30)));
        let merged = guard.finish();
        let epochs: Vec<u64> = merged.iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2], "preloaded epochs merge in order");
    }

    #[test]
    fn dropping_the_guard_discards_and_uninstalls() {
        {
            let _guard = install_local(10, None);
            assert!(local_record(Snapshot::empty("a", 0, 1)));
        }
        assert!(!local_installed());
        assert!(local_pending().is_empty(), "dropped buffer is gone");
    }

    #[test]
    fn local_sinks_are_per_thread() {
        let _guard = install_local(10, None);
        assert!(local_installed());
        std::thread::spawn(|| {
            assert!(!local_installed(), "other threads see no local sink");
            assert!(!local_record(Snapshot::empty("b", 0, 1)));
        })
        .join()
        .expect("spawned thread");
    }
}

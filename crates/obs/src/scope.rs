//! Deterministic replay labelling.
//!
//! Snapshots from a parallel run are only useful if each replay has a
//! stable identity: the thread pool may execute replays in any order, so
//! names must come from the *structure* of the computation, not from
//! execution order. This module maintains a thread-local stack of scope
//! labels (experiment id, fan-out sequence, item index, …); a replay's
//! id is the joined path plus a per-scope sequence number, which is a
//! pure function of program structure and therefore identical under
//! `--seq` and `--jobs N`.
//!
//! Thread hand-off: a parallel map opens a fan-out scope ([`scoped_fanout`],
//! numbered in program order so two fan-outs in one scope cannot collide),
//! captures the caller's stack with [`fork`], installs it in each worker
//! with [`adopt`], and wraps each item in an index scope — so nested
//! fan-outs compose into paths like `fig9/f0001/i0004/r0000`.

use std::cell::RefCell;

struct Frame {
    label: String,
    /// Sequence number handed to the next replay opened in this scope.
    next_replay: u64,
    /// Sequence number handed to the next fan-out opened in this scope.
    next_fanout: u64,
}

impl Frame {
    fn new(label: String) -> Self {
        Frame {
            label,
            next_replay: 0,
            next_fanout: 0,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// (next replay, next fan-out) for the root (empty) scope.
    static ROOT: RefCell<(u64, u64)> = const { RefCell::new((0, 0)) };
}

/// Pops its scope frame on drop.
#[must_use = "the scope ends when this guard drops"]
#[derive(Debug)]
pub struct ScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            stack.borrow_mut().pop().expect("scope stack underflow");
        });
    }
}

/// Pushes a scope label onto this thread's stack; popped when the guard
/// drops. Labels nest: `scoped("fig9")` inside `scoped("suite")` yields
/// paths under `suite/fig9/`.
pub fn scoped(label: &str) -> ScopeGuard {
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame::new(label.to_string()));
    });
    ScopeGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Pushes a zero-padded fan-out item index scope (`i0042`), so paths
/// sort the same lexicographically and numerically.
pub fn scoped_index(index: usize) -> ScopeGuard {
    scoped(&format!("i{index:04}"))
}

/// Pushes a fan-out scope (`f0001`), numbered by a per-parent-scope
/// counter in program order — so two parallel maps opened in the same
/// scope get distinct subtrees and their item paths cannot collide.
pub fn scoped_fanout() -> ScopeGuard {
    let seq = STACK.with(|stack| match stack.borrow_mut().last_mut() {
        Some(frame) => {
            let s = frame.next_fanout;
            frame.next_fanout += 1;
            s
        }
        None => ROOT.with(|root| {
            let mut root = root.borrow_mut();
            let s = root.1;
            root.1 += 1;
            s
        }),
    });
    scoped(&format!("f{seq:04}"))
}

/// A captured scope path, ready to carry to another thread.
#[derive(Debug, Clone)]
pub struct ScopeStack(Vec<String>);

/// Captures the current thread's scope path (labels only — the receiving
/// side starts fresh sequence counters, which is correct because item
/// scopes are pushed around each unit of forked work).
pub fn fork() -> ScopeStack {
    STACK.with(|stack| ScopeStack(stack.borrow().iter().map(|f| f.label.clone()).collect()))
}

/// Restores the previously installed stack on drop.
#[must_use = "the adopted scope ends when this guard drops"]
#[derive(Debug)]
pub struct AdoptGuard {
    saved: Vec<String>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        install(std::mem::take(&mut self.saved));
    }
}

/// Replaces this thread's scope stack with a forked one (e.g. inside a
/// worker thread); the previous stack is restored when the guard drops.
pub fn adopt(stack: &ScopeStack) -> AdoptGuard {
    let saved = STACK.with(|s| {
        s.borrow()
            .iter()
            .map(|f| f.label.clone())
            .collect::<Vec<_>>()
    });
    install(stack.0.clone());
    AdoptGuard {
        saved,
        _not_send: std::marker::PhantomData,
    }
}

fn install(labels: Vec<String>) {
    STACK.with(|stack| {
        *stack.borrow_mut() = labels.into_iter().map(Frame::new).collect();
    });
}

/// Allocates the next replay id under the current scope: the joined path
/// plus a per-scope sequence number, e.g. `fig9/f0000/i0003/r0000`.
/// Sequential replays in one scope get `r0000`, `r0001`, … in program
/// order.
pub fn next_replay_path() -> String {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let seq = match stack.last_mut() {
            Some(frame) => {
                let s = frame.next_replay;
                frame.next_replay += 1;
                s
            }
            None => ROOT.with(|root| {
                let mut root = root.borrow_mut();
                let s = root.0;
                root.0 += 1;
                s
            }),
        };
        let mut path = String::new();
        for frame in stack.iter() {
            path.push_str(&frame.label);
            path.push('/');
        }
        path.push_str(&format!("r{seq:04}"));
        path
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_and_sequence() {
        let _a = scoped("fig9");
        {
            let _b = scoped_index(3);
            assert_eq!(next_replay_path(), "fig9/i0003/r0000");
            assert_eq!(next_replay_path(), "fig9/i0003/r0001");
        }
        // A sibling scope restarts its own sequence.
        let _c = scoped_index(4);
        assert_eq!(next_replay_path(), "fig9/i0004/r0000");
    }

    #[test]
    fn sibling_fanouts_get_distinct_subtrees() {
        let _a = scoped("fig9");
        {
            let _f = scoped_fanout();
            let _i = scoped_index(0);
            assert_eq!(next_replay_path(), "fig9/f0000/i0000/r0000");
        }
        {
            // Same item index, second fan-out: no collision.
            let _f = scoped_fanout();
            let _i = scoped_index(0);
            assert_eq!(next_replay_path(), "fig9/f0001/i0000/r0000");
        }
        // Direct replays in the parent scope use an independent counter.
        assert_eq!(next_replay_path(), "fig9/r0000");
    }

    #[test]
    fn root_scope_still_names_replays_and_fanouts() {
        // Other tests in this binary run on separate threads, so the
        // thread-local root counters start at zero here regardless.
        let first = next_replay_path();
        let second = next_replay_path();
        assert!(first.starts_with('r') && second.starts_with('r'));
        assert_ne!(first, second);
        let f1 = {
            let _f = scoped_fanout();
            next_replay_path()
        };
        let f2 = {
            let _f = scoped_fanout();
            next_replay_path()
        };
        assert_ne!(f1, f2);
    }

    #[test]
    fn fork_and_adopt_move_the_path_across_threads() {
        let _a = scoped("suite");
        let _b = scoped("fig3");
        let forked = fork();
        let path = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _adopted = adopt(&forked);
                    let _item = scoped_index(7);
                    next_replay_path()
                })
                .join()
                .expect("worker")
        });
        assert_eq!(path, "suite/fig3/i0007/r0000");
        // This thread's own scope is untouched.
        assert_eq!(next_replay_path(), "suite/fig3/r0000");
    }

    #[test]
    fn adopt_restores_previous_stack() {
        let _a = scoped("outer");
        let empty = ScopeStack(Vec::new());
        {
            let _adopted = adopt(&empty);
            assert_eq!(next_replay_path(), "r0000");
        }
        assert_eq!(next_replay_path(), "outer/r0000");
    }
}

//! # cnt-obs — observability for CNT-Cache replays
//!
//! This crate adds a thin observability layer over the simulator:
//!
//! - [`Registry`] / [`Counter`] / [`Gauge`] — a lock-free-on-the-hot-path
//!   metrics registry ([`registry`] returns the process-wide instance);
//! - [`scope`] — deterministic replay identities (`fig9/i0003/r0000`)
//!   that are pure functions of program structure, so names match under
//!   sequential and parallel execution;
//! - [`Snapshot`] — epoch captures of per-level [`cnt_sim::CacheStats`],
//!   [`cnt_energy::EnergyBreakdown`], predictor/encoding counters, and
//!   deferred-update FIFO occupancy;
//! - [`sink`] — a global collector that orders interleaved snapshots by
//!   (experiment id, epoch) before they are rendered to JSON Lines;
//! - [`local`] — thread-local session sinks, so a multi-tenant replay
//!   server can keep per-session metrics streams isolated (and stream
//!   them live) while sharing one process.
//!
//! ## Cost model
//!
//! Tracing is opt-in per process. With no sink installed, [`replay`]
//! adds a single relaxed atomic load and then delegates to the exact
//! same loop an uninstrumented replay uses; the allocation-free hot
//! path guarantee is enforced by a counting-allocator test in this
//! crate and in `cnt-cache`. With a sink installed, snapshot capture
//! clones fixed-size accumulators once per epoch (never per access).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod local;
pub mod registry;
pub mod scope;
pub mod sink;
pub mod snapshot;

pub use local::{
    install_local, local_installed, local_pending, preload_local, LocalSinkGuard, OnRecord,
};
pub use registry::{Counter, Gauge, MetricValue, Registry};
pub use scope::{
    adopt, fork, next_replay_path, scoped, scoped_fanout, scoped_index, AdoptGuard, ScopeGuard,
    ScopeStack,
};
pub use sink::{
    drain, epoch_len, install, is_enabled, pending, preload, record, registry, to_jsonl,
};
pub use snapshot::{
    replay, replay_batch, replay_hierarchy, replay_into, validate_jsonl, validate_sessions_jsonl,
    DeltaTracker, FifoSnapshot, IngestSnapshot, JsonlSummary, LevelSnapshot, SessionsSummary,
    Snapshot,
};

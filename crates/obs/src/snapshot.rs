//! Epoch snapshots of replay state.
//!
//! A [`Snapshot`] is a point-in-time capture of everything a replay
//! accumulates — per-level hit/miss statistics, the energy-breakdown
//! accumulators, encoding/predictor decision counters, and deferred
//! update FIFO occupancy — tagged with the replay's deterministic id and
//! epoch number so interleaved parallel emission can be reordered at the
//! sink (see [`crate::sink`]).

use serde::{Deserialize, Serialize};

use cnt_cache::{CntCache, CntHierarchy, EncodingCounters, ReliabilityCounters};
use cnt_encoding::FifoStats;
use cnt_energy::EnergyBreakdown;
use cnt_sim::trace::{AccessBatch, Trace};
use cnt_sim::{AccessError, CacheStats};

use crate::{scope, sink};

/// Deferred-update FIFO occupancy at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FifoSnapshot {
    /// Updates queued right now.
    pub len: u64,
    /// Queue capacity.
    pub capacity: u64,
    /// Cumulative push/drain/cancel/drop counters.
    pub stats: FifoStats,
}

/// Chunk-ingest counters for replays fed from a streamed `.ctr` trace
/// (see `cnt-trace` and `cnt_bench::stream`). All zero / absent for
/// in-memory replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Intact chunks read from the source so far.
    pub chunks_read: u64,
    /// Chunks fully fed to the simulator so far.
    pub chunks_consumed: u64,
    /// Damaged chunks stepped over (skip-with-report policy).
    pub chunks_skipped: u64,
    /// CRC32 mismatches seen.
    pub crc_failures: u64,
    /// Payload-shape decode failures seen.
    pub decode_failures: u64,
    /// Payload bytes read from the source (including skipped chunks).
    pub bytes_read: u64,
    /// Payload bytes decoded into access records.
    pub bytes_decoded: u64,
    /// Chunks sitting decoded-but-unconsumed in the prefetch window.
    pub prefetch_buffered: u64,
    /// High-water mark of buffered payload bytes — must stay within the
    /// reader's configured budget.
    pub peak_buffered_bytes: u64,
}

/// Everything one cache level has accumulated so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSnapshot {
    /// Level name from the cache config (e.g. `L1D`).
    pub level: String,
    /// Hit/miss/write statistics.
    pub stats: CacheStats,
    /// Per-charge-kind energy accumulators.
    pub energy: EnergyBreakdown,
    /// Energy spent in this epoch alone: `energy` minus the previous
    /// epoch's `energy` (equal to `energy` at epoch 0). Filled by
    /// [`DeltaTracker`]; emitters that bypass it leave the cumulative
    /// value here.
    pub energy_delta: EnergyBreakdown,
    /// Predictor windows, flips taken/rejected, projected vs realized
    /// savings.
    pub encoding: EncodingCounters,
    /// Deferred-update FIFO occupancy and overflow stats.
    pub fifo: FifoSnapshot,
    /// Metadata-protection and fault-handling activity (all zero unless
    /// the level protects its direction bits or a campaign injects
    /// faults).
    pub reliability: ReliabilityCounters,
}

impl LevelSnapshot {
    /// Captures one cache level.
    pub fn capture(cache: &CntCache) -> Self {
        LevelSnapshot {
            level: cache.name().to_string(),
            stats: cache.stats().clone(),
            energy: cache.meter().breakdown().clone(),
            // Delta-from-zero until a DeltaTracker refines it.
            energy_delta: cache.meter().breakdown().clone(),
            encoding: *cache.encoding_counters(),
            fifo: FifoSnapshot {
                len: cache.fifo_len() as u64,
                capacity: cache.fifo_capacity() as u64,
                stats: *cache.fifo_stats(),
            },
            reliability: *cache.reliability_counters(),
        }
    }
}

/// One epoch snapshot of a replay, as emitted on the JSONL stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Deterministic replay id, e.g. `fig9/i0003/r0000` (see
    /// [`crate::scope`]).
    pub experiment: String,
    /// Zero-based epoch index within the replay.
    pub epoch: u64,
    /// Accesses replayed so far (cumulative, not per-epoch).
    pub accesses: u64,
    /// One entry per cache level.
    pub levels: Vec<LevelSnapshot>,
    /// Chunk-ingest counters when the replay streams a `.ctr` trace;
    /// `None` (JSON `null`) for in-memory replays.
    pub ingest: Option<IngestSnapshot>,
}

impl Snapshot {
    /// Captures a single-level replay.
    pub fn capture(cache: &CntCache, experiment: &str, epoch: u64, accesses: u64) -> Self {
        Snapshot {
            experiment: experiment.to_string(),
            epoch,
            accesses,
            levels: vec![LevelSnapshot::capture(cache)],
            ingest: None,
        }
    }

    /// Captures every level of a hierarchy (L1I, L1D, and L2 when
    /// present).
    pub fn capture_hierarchy(
        hierarchy: &CntHierarchy,
        experiment: &str,
        epoch: u64,
        accesses: u64,
    ) -> Self {
        let mut levels = vec![
            LevelSnapshot::capture(hierarchy.l1i()),
            LevelSnapshot::capture(hierarchy.l1d()),
        ];
        if let Some(l2) = hierarchy.l2() {
            levels.push(LevelSnapshot::capture(l2));
        }
        Snapshot {
            experiment: experiment.to_string(),
            epoch,
            accesses,
            levels,
            ingest: None,
        }
    }

    /// A snapshot with no levels — only useful as a sink-test fixture.
    pub fn empty(experiment: &str, epoch: u64, accesses: u64) -> Self {
        Snapshot {
            experiment: experiment.to_string(),
            epoch,
            accesses,
            levels: Vec::new(),
            ingest: None,
        }
    }
}

/// Rewrites each level's `energy_delta` from cumulative to per-epoch by
/// remembering the previous epoch's accumulators, per level index.
///
/// One tracker per replay: feed it every snapshot of that replay in
/// epoch order (exactly how the `replay*` emitters in this module call
/// it).
///
/// # Example
///
/// ```
/// use cnt_obs::DeltaTracker;
/// # use cnt_obs::Snapshot;
/// let mut deltas = DeltaTracker::new();
/// let mut snapshot = Snapshot::empty("demo", 0, 0);
/// deltas.apply(&mut snapshot); // epoch 0: delta == cumulative
/// ```
#[derive(Debug, Default)]
pub struct DeltaTracker {
    prev: Vec<EnergyBreakdown>,
}

impl DeltaTracker {
    /// A tracker with no history (first epoch's delta = cumulative).
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// A tracker resuming from the per-level cumulative accumulators of
    /// the last emitted epoch — what [`state`](Self::state) returned when
    /// the run was checkpointed. A resumed replay's next delta is then
    /// computed against the correct previous epoch instead of zero.
    pub fn seeded(prev: Vec<EnergyBreakdown>) -> Self {
        DeltaTracker { prev }
    }

    /// The per-level cumulative accumulators of the last applied epoch
    /// (what a checkpoint must save to [`seeded`](Self::seeded) later).
    pub fn state(&self) -> &[EnergyBreakdown] {
        &self.prev
    }

    /// Rewrites `energy_delta` on every level of `snapshot` and records
    /// the cumulative values for the next epoch.
    pub fn apply(&mut self, snapshot: &mut Snapshot) {
        for (i, level) in snapshot.levels.iter_mut().enumerate() {
            let cumulative = level.energy.clone();
            level.energy_delta = match self.prev.get(i) {
                Some(prev) => cumulative.clone() - prev.clone(),
                None => cumulative.clone(),
            };
            if i < self.prev.len() {
                self.prev[i] = cumulative;
            } else {
                self.prev.push(cumulative);
            }
        }
    }
}

/// Replays `trace` through `cache`, emitting one snapshot per epoch to
/// the global sink when tracing is enabled.
///
/// When the sink is disabled (the default) this delegates straight to
/// [`CntCache::run`] and adds exactly one relaxed atomic load — the hot
/// path stays allocation-free (see `tests/no_alloc_disabled.rs`).
///
/// # Errors
///
/// Propagates [`AccessError`] from the underlying replay.
pub fn replay(cache: &mut CntCache, trace: &Trace) -> Result<usize, AccessError> {
    let Some(every) = sink::epoch_len() else {
        return cache.run(trace.iter());
    };
    let experiment = scope::next_replay_path();
    sink::registry().counter("obs.replays_observed").inc();
    let mut deltas = DeltaTracker::new();
    cache.run_observed(trace.iter(), every, |cache, epoch, accesses| {
        let mut snapshot = Snapshot::capture(cache, &experiment, epoch, accesses);
        deltas.apply(&mut snapshot);
        sink::record(snapshot);
    })
}

/// Batched counterpart of [`replay`]: streams a struct-of-arrays
/// [`AccessBatch`] through `cache`, emitting one snapshot per epoch to
/// the global sink when tracing is enabled.
///
/// When the sink is disabled this delegates straight to the columnar
/// [`CntCache::run_batch`] loop — the SIMD-friendly hot path of the
/// throughput benchmark. The snapshot stream under an installed sink is
/// byte-identical to [`replay`] over the same records.
///
/// # Errors
///
/// Propagates [`AccessError`] from the underlying replay.
pub fn replay_batch(cache: &mut CntCache, batch: &AccessBatch) -> Result<usize, AccessError> {
    let Some(every) = sink::epoch_len() else {
        return cache.run_batch(batch);
    };
    let experiment = scope::next_replay_path();
    sink::registry().counter("obs.replays_observed").inc();
    let mut deltas = DeltaTracker::new();
    cache.run_batch_observed(batch, every, |cache, epoch, accesses| {
        let mut snapshot = Snapshot::capture(cache, &experiment, epoch, accesses);
        deltas.apply(&mut snapshot);
        sink::record(snapshot);
    })
}

/// Replays `trace` through a full hierarchy, emitting one multi-level
/// snapshot per epoch to the global sink when tracing is enabled — the
/// hierarchy counterpart of [`replay`], used by the placement study.
///
/// # Errors
///
/// Propagates [`AccessError`] from the underlying replay.
pub fn replay_hierarchy(hierarchy: &mut CntHierarchy, trace: &Trace) -> Result<usize, AccessError> {
    let Some(every) = sink::epoch_len() else {
        return hierarchy.run(trace.iter());
    };
    let experiment = scope::next_replay_path();
    sink::registry()
        .counter("obs.hierarchy_replays_observed")
        .inc();
    let mut deltas = DeltaTracker::new();
    hierarchy.run_observed(trace.iter(), every, |hierarchy, epoch, accesses| {
        let mut snapshot = Snapshot::capture_hierarchy(hierarchy, &experiment, epoch, accesses);
        deltas.apply(&mut snapshot);
        sink::record(snapshot);
    })
}

/// Like [`replay`] but collecting into a caller-supplied buffer instead
/// of the global sink — independent of process-wide state, so tests can
/// run in parallel.
///
/// # Errors
///
/// Propagates [`AccessError`] from the underlying replay.
///
/// # Panics
///
/// Panics if `every` is zero.
pub fn replay_into(
    cache: &mut CntCache,
    trace: &Trace,
    experiment: &str,
    every: u64,
    out: &mut Vec<Snapshot>,
) -> Result<usize, AccessError> {
    let mut deltas = DeltaTracker::new();
    cache.run_observed(trace.iter(), every, |cache, epoch, accesses| {
        let mut snapshot = Snapshot::capture(cache, experiment, epoch, accesses);
        deltas.apply(&mut snapshot);
        out.push(snapshot);
    })
}

/// A summary of a validated JSONL metrics stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Total snapshot lines.
    pub snapshots: usize,
    /// Distinct experiment ids.
    pub experiments: usize,
}

/// Validates a JSONL metrics stream: every line must parse as a
/// [`Snapshot`] with at least one level, and within each experiment the
/// epochs must increase by exactly one from zero with non-decreasing
/// access counts. Snapshots carrying chunk-ingest counters must keep
/// them non-decreasing too, consumption can never outrun reading, and
/// the prefetch gauge must stay strictly below the read-but-unconsumed
/// chunk gap (counting the in-flight chunk as buffered was a real bug).
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    // (experiment, last epoch, last accesses, level count) per stream;
    // linear scan is fine for lint-sized inputs and keeps ordering
    // deterministic.
    let mut streams: Vec<(String, u64, u64, usize)> = Vec::new();
    let mut ingests: Vec<(String, IngestSnapshot)> = Vec::new();
    let mut snapshots = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in metrics stream"));
        }
        let snapshot: Snapshot =
            serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if snapshot.levels.is_empty() {
            return Err(format!(
                "line {lineno}: snapshot for `{}` has no cache levels",
                snapshot.experiment
            ));
        }
        if let Some(ingest) = snapshot.ingest {
            if ingest.chunks_consumed > ingest.chunks_read {
                return Err(format!(
                    "line {lineno}: experiment `{}` consumed {} chunks but only read {}",
                    snapshot.experiment, ingest.chunks_consumed, ingest.chunks_read
                ));
            }
            // Prefetch-gauge sanity. Read-but-unconsumed chunks split
            // into: fully buffered (the gauge), the one being consumed,
            // and decode-skipped ones. A snapshot is always emitted while
            // a chunk is mid-consumption, so the gauge must be *strictly*
            // less than the read/consumed gap — equality is exactly the
            // historical off-by-one that counted the current chunk as
            // buffered. With no gap there is nothing to buffer.
            let gap = ingest.chunks_read - ingest.chunks_consumed;
            if gap == 0 {
                if ingest.prefetch_buffered != 0 {
                    return Err(format!(
                        "line {lineno}: experiment `{}` reports {} buffered chunks \
                         with none unconsumed",
                        snapshot.experiment, ingest.prefetch_buffered
                    ));
                }
            } else if ingest.prefetch_buffered >= gap {
                return Err(format!(
                    "line {lineno}: experiment `{}` reports {} buffered chunks but only \
                     {} are read-but-unconsumed (gauge counts the in-flight chunk?)",
                    snapshot.experiment, ingest.prefetch_buffered, gap
                ));
            }
            match ingests
                .iter_mut()
                .find(|(id, _)| *id == snapshot.experiment)
            {
                None => ingests.push((snapshot.experiment.clone(), ingest)),
                Some((id, last)) => {
                    if ingest.chunks_read < last.chunks_read
                        || ingest.chunks_consumed < last.chunks_consumed
                        || ingest.chunks_skipped < last.chunks_skipped
                        || ingest.crc_failures < last.crc_failures
                        || ingest.decode_failures < last.decode_failures
                        || ingest.bytes_read < last.bytes_read
                        || ingest.bytes_decoded < last.bytes_decoded
                        || ingest.peak_buffered_bytes < last.peak_buffered_bytes
                    {
                        return Err(format!(
                            "line {lineno}: experiment `{id}` ingest counters went backwards"
                        ));
                    }
                    *last = ingest;
                }
            }
        }
        match streams
            .iter_mut()
            .find(|(id, _, _, _)| *id == snapshot.experiment)
        {
            None => {
                if snapshot.epoch != 0 {
                    return Err(format!(
                        "line {lineno}: experiment `{}` starts at epoch {} (expected 0)",
                        snapshot.experiment, snapshot.epoch
                    ));
                }
                streams.push((
                    snapshot.experiment.clone(),
                    0,
                    snapshot.accesses,
                    snapshot.levels.len(),
                ));
            }
            Some((id, last_epoch, last_accesses, levels)) => {
                if snapshot.epoch != *last_epoch + 1 {
                    return Err(format!(
                        "line {lineno}: experiment `{id}` jumps from epoch {last_epoch} to {}",
                        snapshot.epoch
                    ));
                }
                if snapshot.accesses < *last_accesses {
                    return Err(format!(
                        "line {lineno}: experiment `{id}` access count went backwards \
                         ({last_accesses} -> {})",
                        snapshot.accesses
                    ));
                }
                // A resumed stream spliced onto the wrong run changes the
                // hierarchy shape mid-experiment; an uninterrupted (or
                // correctly resumed) one never does.
                if snapshot.levels.len() != *levels {
                    return Err(format!(
                        "line {lineno}: experiment `{id}` changes from {levels} cache \
                         levels to {} mid-stream",
                        snapshot.levels.len()
                    ));
                }
                *last_epoch = snapshot.epoch;
                *last_accesses = snapshot.accesses;
            }
        }
        snapshots += 1;
    }
    Ok(JsonlSummary {
        snapshots,
        experiments: streams.len(),
    })
}

/// A summary of a validated multiplexed (multi-session) JSONL stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionsSummary {
    /// Distinct session ids (`s0000`-style prefixes).
    pub sessions: usize,
    /// Total snapshot lines across all sessions.
    pub snapshots: usize,
    /// Distinct (session, replay) experiment ids.
    pub experiments: usize,
}

/// Validates a **multiplexed** per-session JSONL stream, as written by a
/// replay server that merges many tenants into one log. On top of every
/// [`validate_jsonl`] rule (which is already keyed per experiment id, so
/// per-session epoch monotonicity and ingest monotonicity follow from
/// session-scoped ids), this requires each experiment id to carry an
/// `sNNNN/` session prefix — an unprefixed id means some session leaked
/// into the log without scoping, the exact bug this mode exists to
/// catch.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_sessions_jsonl(text: &str) -> Result<SessionsSummary, String> {
    let summary = validate_jsonl(text)?;
    let mut sessions: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let snapshot: Snapshot =
            serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let Some((session, rest)) = snapshot.experiment.split_once('/') else {
            return Err(format!(
                "line {lineno}: experiment `{}` has no session prefix",
                snapshot.experiment
            ));
        };
        let well_formed = session.len() >= 5
            && session.starts_with('s')
            && session[1..].bytes().all(|b| b.is_ascii_digit());
        if !well_formed || rest.is_empty() {
            return Err(format!(
                "line {lineno}: experiment `{}` is not session-scoped \
                 (expected an `sNNNN/` prefix)",
                snapshot.experiment
            ));
        }
        if !sessions.iter().any(|s| s == session) {
            sessions.push(session.to_string());
        }
    }
    Ok(SessionsSummary {
        sessions: sessions.len(),
        snapshots: summary.snapshots,
        experiments: summary.experiments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(experiment: &str, epoch: u64, accesses: u64) -> String {
        let mut snapshot = Snapshot::empty(experiment, epoch, accesses);
        snapshot.levels.push(LevelSnapshot {
            level: "L1D".to_string(),
            stats: CacheStats::default(),
            energy: EnergyBreakdown::default(),
            energy_delta: EnergyBreakdown::default(),
            encoding: EncodingCounters::default(),
            fifo: FifoSnapshot {
                len: 0,
                capacity: 8,
                stats: FifoStats::default(),
            },
            reliability: ReliabilityCounters::default(),
        });
        serde_json::to_string(&snapshot).expect("snapshot serializes")
    }

    #[test]
    fn validate_accepts_interleaved_monotonic_streams() {
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            line("a/r0000", 0, 25),
            line("b/r0000", 0, 25),
            line("a/r0000", 1, 50),
            line("b/r0000", 1, 30),
        );
        let summary = validate_jsonl(&text).expect("valid stream");
        assert_eq!(
            summary,
            JsonlSummary {
                snapshots: 4,
                experiments: 2
            }
        );
    }

    #[test]
    fn validate_rejects_epoch_gap_and_bad_start() {
        let gap = format!("{}\n{}\n", line("a", 0, 10), line("a", 2, 20));
        assert!(validate_jsonl(&gap).unwrap_err().contains("jumps"));
        let start = format!("{}\n", line("a", 3, 10));
        assert!(validate_jsonl(&start).unwrap_err().contains("expected 0"));
    }

    #[test]
    fn validate_rejects_garbage_and_empty_levels() {
        assert!(validate_jsonl("not json\n").is_err());
        let no_levels = serde_json::to_string(&Snapshot::empty("a", 0, 0)).expect("serializes");
        assert!(validate_jsonl(&format!("{no_levels}\n"))
            .unwrap_err()
            .contains("no cache levels"));
    }

    fn ingest_line(experiment: &str, epoch: u64, ingest: IngestSnapshot) -> String {
        let mut snapshot: Snapshot =
            serde_json::from_str(&line(experiment, epoch, (epoch + 1) * 10)).expect("parses");
        snapshot.ingest = Some(ingest);
        serde_json::to_string(&snapshot).expect("snapshot serializes")
    }

    #[test]
    fn validate_rejects_inflated_prefetch_gauge() {
        // The historical off-by-one: gauge equal to the read/consumed gap
        // means the chunk currently being replayed was counted as
        // buffered.
        let inflated = ingest_line(
            "a",
            0,
            IngestSnapshot {
                chunks_read: 4,
                chunks_consumed: 1,
                prefetch_buffered: 3,
                ..IngestSnapshot::default()
            },
        );
        let err = validate_jsonl(&format!("{inflated}\n")).unwrap_err();
        assert!(err.contains("buffered"), "{err}");

        // Nothing unconsumed: the gauge must read zero.
        let stale = ingest_line(
            "a",
            0,
            IngestSnapshot {
                chunks_read: 4,
                chunks_consumed: 4,
                prefetch_buffered: 1,
                ..IngestSnapshot::default()
            },
        );
        let err = validate_jsonl(&format!("{stale}\n")).unwrap_err();
        assert!(err.contains("none unconsumed"), "{err}");

        // A sane mid-stream gauge passes.
        let sane = ingest_line(
            "a",
            0,
            IngestSnapshot {
                chunks_read: 4,
                chunks_consumed: 1,
                prefetch_buffered: 2,
                ..IngestSnapshot::default()
            },
        );
        validate_jsonl(&format!("{sane}\n")).expect("valid gauge accepted");
    }

    #[test]
    fn validate_rejects_backwards_ingest_bytes() {
        let first = ingest_line(
            "a",
            0,
            IngestSnapshot {
                chunks_read: 2,
                chunks_consumed: 1,
                bytes_decoded: 100,
                peak_buffered_bytes: 64,
                ..IngestSnapshot::default()
            },
        );
        let second = ingest_line(
            "a",
            1,
            IngestSnapshot {
                chunks_read: 3,
                chunks_consumed: 2,
                bytes_decoded: 90, // went backwards
                peak_buffered_bytes: 64,
                ..IngestSnapshot::default()
            },
        );
        let err = validate_jsonl(&format!("{first}\n{second}\n")).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_backwards_skip_counters() {
        // chunks_skipped and decode_failures are cumulative too — a
        // resumed stream that restarted them at zero must be rejected.
        let first = ingest_line(
            "a",
            0,
            IngestSnapshot {
                chunks_read: 4,
                chunks_consumed: 3,
                chunks_skipped: 2,
                decode_failures: 1,
                ..IngestSnapshot::default()
            },
        );
        let second = ingest_line(
            "a",
            1,
            IngestSnapshot {
                chunks_read: 6,
                chunks_consumed: 5,
                chunks_skipped: 0,
                decode_failures: 1,
                ..IngestSnapshot::default()
            },
        );
        let err = validate_jsonl(&format!("{first}\n{second}\n")).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_level_count_change_mid_stream() {
        let two_levels = {
            let mut snapshot: Snapshot = serde_json::from_str(&line("a", 1, 20)).expect("parses");
            let extra = snapshot.levels[0].clone();
            snapshot.levels.push(extra);
            serde_json::to_string(&snapshot).expect("serializes")
        };
        let err = validate_jsonl(&format!("{}\n{two_levels}\n", line("a", 0, 10))).unwrap_err();
        assert!(err.contains("cache levels"), "{err}");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let text = line("fig9/i0001/r0000", 3, 400);
        let parsed: Snapshot = serde_json::from_str(&text).expect("parses");
        assert_eq!(parsed.experiment, "fig9/i0001/r0000");
        assert_eq!(parsed.epoch, 3);
        assert_eq!(parsed.levels.len(), 1);
        assert_eq!(parsed.levels[0].fifo.capacity, 8);
    }
}

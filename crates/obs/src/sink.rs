//! The process-wide snapshot sink.
//!
//! Tracing is off by default and costs one relaxed atomic load on the
//! disabled path — the replay hot loop stays allocation-free (proven by
//! `tests/no_alloc_disabled.rs`). When a binary installs a sink with
//! [`install`], instrumented replays record [`Snapshot`]s here from any
//! worker thread; [`drain`] then returns them **sorted by (experiment
//! id, epoch)**, so the emitted JSONL is deterministic no matter how the
//! thread pool interleaved the replays.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::registry::Registry;
use crate::snapshot::Snapshot;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH_LEN: AtomicU64 = AtomicU64::new(0);
static SNAPSHOTS: Mutex<Vec<Snapshot>> = Mutex::new(Vec::new());
static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide metrics registry (live whether or not a snapshot
/// sink is installed).
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Enables snapshot collection with an epoch of `every` accesses.
/// Replays started after this call emit one snapshot per epoch.
///
/// # Panics
///
/// Panics if `every` is zero.
pub fn install(every: u64) {
    assert!(every > 0, "epoch length must be positive");
    EPOCH_LEN.store(every, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// `true` when a sink is installed — the process-wide one, or a
/// thread-local session sink on the calling thread (see
/// [`crate::local`]). One relaxed load plus one thread-local flag read:
/// this is the entire cost tracing adds to an uninstrumented replay.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || crate::local::local_installed()
}

/// The configured epoch length, or `None` when tracing is disabled. A
/// thread-local session sink takes precedence over the global
/// configuration on its own thread.
pub fn epoch_len() -> Option<u64> {
    if let Some(every) = crate::local::local_epoch_len() {
        return Some(every);
    }
    if ENABLED.load(Ordering::Relaxed) {
        Some(EPOCH_LEN.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Records one snapshot (no-op when tracing is disabled, so late
/// stragglers after [`drain`] are dropped rather than leaked into the
/// next collection). When the calling thread has a local session sink
/// installed, the snapshot lands there and never touches the global
/// buffer — session isolation is routing, not filtering.
pub fn record(snapshot: Snapshot) {
    if crate::local::local_installed() {
        registry().counter("obs.snapshots_recorded").inc();
        crate::local::local_record(snapshot);
        return;
    }
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    registry().counter("obs.snapshots_recorded").inc();
    SNAPSHOTS.lock().expect("sink lock").push(snapshot);
}

/// A copy of everything recorded so far, sorted by (experiment id,
/// epoch), **without** disabling the sink or clearing the buffer.
///
/// This is the checkpoint path: at a chunk boundary the driver saves the
/// snapshots already emitted so a resumed process can [`preload`] them
/// and [`drain`] a stream byte-identical to the uninterrupted run. Call
/// it only while replays are quiescent (between chunks); a snapshot
/// recorded concurrently may or may not be included.
pub fn pending() -> Vec<Snapshot> {
    let mut snapshots = SNAPSHOTS.lock().expect("sink lock").clone();
    snapshots.sort_by(|a, b| a.experiment.cmp(&b.experiment).then(a.epoch.cmp(&b.epoch)));
    snapshots
}

/// Seeds the sink buffer with snapshots captured by [`pending`] before a
/// checkpoint — the resume-side counterpart. Call after [`install`] and
/// before restarting replays; the preloaded epochs merge with the ones
/// the resumed run emits and sort into one continuous stream on
/// [`drain`].
pub fn preload(snapshots: Vec<Snapshot>) {
    SNAPSHOTS.lock().expect("sink lock").extend(snapshots);
}

/// Disables collection and returns everything recorded, sorted by
/// (experiment id, epoch). Replay ids are deterministic (see
/// [`crate::scope`]) and epochs are unique within a replay, so the sort
/// key is total and the result is byte-identical across `--jobs`
/// settings.
pub fn drain() -> Vec<Snapshot> {
    ENABLED.store(false, Ordering::SeqCst);
    EPOCH_LEN.store(0, Ordering::SeqCst);
    let mut snapshots = std::mem::take(&mut *SNAPSHOTS.lock().expect("sink lock"));
    snapshots.sort_by(|a, b| a.experiment.cmp(&b.experiment).then(a.epoch.cmp(&b.epoch)));
    snapshots
}

/// Renders snapshots as JSON Lines: one compact JSON object per line,
/// with a trailing newline.
///
/// # Errors
///
/// Returns the underlying serialization error (e.g. a non-finite float,
/// which `serde_json` rejects).
pub fn to_jsonl(snapshots: &[Snapshot]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for snapshot in snapshots {
        out.push_str(&serde_json::to_string(snapshot)?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-sink tests share process state; keep them inside ONE #[test]
    // so the libtest thread pool cannot interleave install/drain calls.
    #[test]
    fn install_record_drain_lifecycle() {
        assert!(!is_enabled());
        assert_eq!(epoch_len(), None);

        install(100);
        assert!(is_enabled());
        assert_eq!(epoch_len(), Some(100));

        // Out-of-order arrival (as from pool workers) sorts on drain.
        record(Snapshot::empty("b/r0001", 0, 10));
        record(Snapshot::empty("a/r0000", 1, 20));
        record(Snapshot::empty("a/r0000", 0, 10));
        let drained = drain();
        assert!(!is_enabled(), "drain disables the sink");
        let order: Vec<(String, u64)> = drained
            .iter()
            .map(|s| (s.experiment.clone(), s.epoch))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a/r0000".to_string(), 0),
                ("a/r0000".to_string(), 1),
                ("b/r0001".to_string(), 0)
            ]
        );

        // Stragglers after drain are dropped, not carried over.
        record(Snapshot::empty("late", 0, 1));
        assert!(drain().is_empty());

        // Checkpoint/resume: pending() observes without draining, and a
        // fresh install + preload continues the same stream.
        install(100);
        record(Snapshot::empty("a/r0000", 0, 10));
        record(Snapshot::empty("a/r0000", 1, 20));
        let saved = pending();
        assert_eq!(saved.len(), 2, "pending copies without clearing");
        assert_eq!(drain().len(), 2, "buffer survived pending()");

        install(100); // "resumed process"
        preload(saved);
        record(Snapshot::empty("a/r0000", 2, 30));
        let resumed = drain();
        let epochs: Vec<u64> = resumed.iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2], "preloaded epochs merge in order");

        let jsonl = to_jsonl(&drained).expect("snapshots serialize");
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.ends_with('\n'));
        assert!(registry().counter("obs.snapshots_recorded").get() >= 3);
    }
}

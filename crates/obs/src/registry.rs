//! A lightweight counter/gauge registry.
//!
//! Handles are cheap to clone (`Arc<AtomicU64>` underneath) and safe to
//! bump from any thread without locking; the registry itself is only
//! locked on (rare) handle creation and on export. Counters accumulate
//! monotonically; gauges hold the latest `f64` sample.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64` metric.
///
/// # Example
///
/// ```
/// use cnt_obs::Registry;
///
/// let registry = Registry::new();
/// let emitted = registry.counter("snapshots_emitted");
/// emitted.inc();
/// emitted.add(2);
/// assert_eq!(registry.counter("snapshots_emitted").get(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Records a sample, replacing the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — a gauge must always be
    /// renderable and serializable.
    pub fn set(&self, value: f64) {
        assert!(value.is_finite(), "gauge sample must be finite: {value}");
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The latest sample (`0.0` before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One exported metric value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(f64),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(n) => write!(f, "{n}"),
            MetricValue::Gauge(v) => write!(f, "{v}"),
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
}

/// A named collection of counters and gauges.
///
/// Metrics are registered on first use and listed in registration order,
/// so an export is deterministic for a deterministic program.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry lock");
        for (existing, metric) in metrics.iter() {
            if existing == name {
                match metric {
                    Metric::Counter(c) => return c.clone(),
                    Metric::Gauge(_) => panic!("metric `{name}` is a gauge, not a counter"),
                }
            }
        }
        let counter = Counter(Arc::new(AtomicU64::new(0)));
        metrics.push((name.to_string(), Metric::Counter(counter.clone())));
        counter
    }

    /// Returns the gauge named `name`, creating it at `0.0` on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry lock");
        for (existing, metric) in metrics.iter() {
            if existing == name {
                match metric {
                    Metric::Gauge(g) => return g.clone(),
                    Metric::Counter(_) => panic!("metric `{name}` is a counter, not a gauge"),
                }
            }
        }
        let gauge = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
        metrics.push((name.to_string(), Metric::Gauge(gauge.clone())));
        gauge
    }

    /// Reads every metric, in registration order.
    pub fn export(&self) -> Vec<(String, MetricValue)> {
        let metrics = self.metrics.lock().expect("registry lock");
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Overwrites metrics with previously [`export`](Self::export)ed
    /// values, registering any name not yet present (in `entries` order).
    ///
    /// This is the resume path of a checkpointed run: counters continue
    /// from their checkpointed values instead of restarting at zero, so
    /// the metrics stream of a resumed replay is indistinguishable from
    /// an uninterrupted one. Metrics not named in `entries` are left
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if an entry's kind disagrees with an already-registered
    /// metric of the same name, or if a gauge value is non-finite —
    /// both mean the checkpoint does not describe this program.
    pub fn restore(&self, entries: &[(String, MetricValue)]) {
        for (name, value) in entries {
            match value {
                MetricValue::Counter(n) => {
                    self.counter(name).0.store(*n, Ordering::Relaxed);
                }
                MetricValue::Gauge(v) => self.gauge(name).set(*v),
            }
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (name, value) in self.export() {
            map.entry(&name, &value.to_string());
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
    }

    #[test]
    fn gauges_hold_latest_sample() {
        let r = Registry::new();
        let g = r.gauge("occupancy");
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        g.set(1.25);
        assert_eq!(r.gauge("occupancy").get(), 1.25);
    }

    #[test]
    fn export_preserves_registration_order() {
        let r = Registry::new();
        r.counter("b").inc();
        r.gauge("a").set(2.0);
        r.counter("c").add(7);
        let names: Vec<String> = r.export().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
        assert_eq!(r.export()[2].1, MetricValue::Counter(7));
    }

    #[test]
    fn restore_continues_checkpointed_values() {
        let r = Registry::new();
        r.counter("chunks").add(7);
        r.gauge("occupancy").set(0.5);
        let saved = r.export();
        let json = serde_json::to_string(&saved).expect("metrics serialize");

        // A fresh process: some metrics already registered (at zero),
        // some only known to the checkpoint.
        let fresh = Registry::new();
        fresh.counter("chunks");
        let loaded: Vec<(String, MetricValue)> =
            serde_json::from_str(&json).expect("metrics parse");
        fresh.restore(&loaded);
        assert_eq!(fresh.counter("chunks").get(), 7);
        assert_eq!(fresh.gauge("occupancy").get(), 0.5);
        // Resumed counters keep counting from where they stopped.
        fresh.counter("chunks").inc();
        assert_eq!(fresh.counter("chunks").get(), 8);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn restore_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("m");
        r.restore(&[("m".to_string(), MetricValue::Gauge(1.0))]);
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("m");
        r.counter("m");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_gauge_panics() {
        Registry::new().gauge("g").set(f64::NAN);
    }

    #[test]
    fn concurrent_bumps_are_lossless() {
        let r = Registry::new();
        let c = r.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}

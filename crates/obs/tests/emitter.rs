//! Epoch-boundary behaviour of the snapshot emitter.
//!
//! Uses `replay_into` (caller-supplied buffer) rather than the global
//! sink, so the tests are independent of process-wide state and can run
//! in parallel. The parallel-vs-sequential determinism of the *global*
//! sink is covered by `crates/bench/tests/metrics_determinism.rs`.

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_obs::{replay_into, validate_jsonl, Snapshot};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;

fn small_cache() -> CntCache {
    let config = CntCacheConfig::builder()
        .name("L1D")
        .size_bytes(4 * 1024)
        .line_bytes(64)
        .associativity(2)
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid geometry");
    CntCache::new(config).expect("valid config")
}

fn trace_of(n: u64) -> Trace {
    let mut trace = Trace::new();
    for i in 0..n {
        let addr = Address::new((i % 512) * 8);
        if i % 4 == 0 {
            trace.push(MemoryAccess::write(addr, 8, i.wrapping_mul(0x9E37)));
        } else {
            trace.push(MemoryAccess::read(addr, 8));
        }
    }
    trace
}

fn snapshots_for(accesses: u64, every: u64) -> Vec<Snapshot> {
    let mut cache = small_cache();
    let trace = trace_of(accesses);
    let mut out = Vec::new();
    let replayed =
        replay_into(&mut cache, &trace, "test/r0000", every, &mut out).expect("replay succeeds");
    assert_eq!(replayed as u64, accesses);
    out
}

#[test]
fn exact_multiple_emits_one_snapshot_per_epoch() {
    let snapshots = snapshots_for(100, 25);
    assert_eq!(snapshots.len(), 4, "100 accesses / 25 per epoch");
    let seen: Vec<(u64, u64)> = snapshots.iter().map(|s| (s.epoch, s.accesses)).collect();
    assert_eq!(seen, vec![(0, 25), (1, 50), (2, 75), (3, 100)]);
}

#[test]
fn trailing_partial_epoch_is_captured() {
    let snapshots = snapshots_for(105, 25);
    assert_eq!(snapshots.len(), 5, "four full epochs plus the remainder");
    let last = snapshots.last().expect("non-empty");
    assert_eq!((last.epoch, last.accesses), (4, 105));
}

#[test]
fn zero_access_replay_still_emits_one_snapshot() {
    let snapshots = snapshots_for(0, 25);
    assert_eq!(snapshots.len(), 1);
    let only = &snapshots[0];
    assert_eq!((only.epoch, only.accesses), (0, 0));
    assert_eq!(only.levels.len(), 1);
    assert_eq!(only.levels[0].stats.accesses(), 0);
    // An all-zero snapshot must serialize: no rate may be NaN. The
    // optional ingest block is legitimately `null` for in-memory
    // replays, so mask it before scanning for NaN-induced nulls.
    let json = serde_json::to_string(only).expect("all-zero snapshot serializes");
    let json = json.replace("\"ingest\":null", "\"ingest\":{}");
    assert!(!json.contains("null"), "no non-finite floats: {json}");
}

#[test]
fn energy_deltas_sum_back_to_cumulative() {
    let snapshots = snapshots_for(105, 25);
    let mut rebuilt = cnt_energy::EnergyBreakdown::default();
    for snapshot in &snapshots {
        rebuilt += snapshot.levels[0].energy_delta.clone();
    }
    let last = &snapshots.last().expect("non-empty").levels[0].energy;
    let (rebuilt_fj, last_fj) = (rebuilt.total().femtojoules(), last.total().femtojoules());
    assert!(
        (rebuilt_fj - last_fj).abs() < 1e-6,
        "sum of per-epoch deltas ({rebuilt_fj}) must equal the cumulative total ({last_fj})"
    );
    // Every delta is non-negative energy and no larger than its epoch's
    // cumulative value.
    for snapshot in &snapshots {
        let level = &snapshot.levels[0];
        let delta_fj = level.energy_delta.total().femtojoules();
        assert!(delta_fj >= 0.0);
        assert!(delta_fj <= level.energy.total().femtojoules() + 1e-9);
    }
}

#[test]
fn snapshot_counters_are_cumulative_and_consistent() {
    let snapshots = snapshots_for(100, 25);
    for window in snapshots.windows(2) {
        let (prev, next) = (&window[0], &window[1]);
        assert!(next.levels[0].stats.accesses() > prev.levels[0].stats.accesses());
        assert!(next.levels[0].energy.total() >= prev.levels[0].energy.total());
    }
    let last = snapshots.last().expect("non-empty");
    assert_eq!(last.levels[0].stats.accesses(), 100);
    let fifo = &last.levels[0].fifo;
    assert_eq!(
        fifo.stats.in_queue(),
        fifo.len,
        "FIFO counters must reconcile with live occupancy"
    );
}

#[test]
fn emitted_stream_passes_jsonl_validation() {
    let snapshots = snapshots_for(105, 25);
    let jsonl = cnt_obs::to_jsonl(&snapshots).expect("serializes");
    let summary = validate_jsonl(&jsonl).expect("valid stream");
    assert_eq!(summary.snapshots, 5);
    assert_eq!(summary.experiments, 1);
}

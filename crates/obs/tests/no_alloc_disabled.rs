//! Proves that routing a replay through `cnt_obs::replay` with tracing
//! disabled keeps the hot path allocation-free.
//!
//! Sibling of `crates/core/tests/no_alloc_hot_path.rs`: the same counting
//! global allocator and the same 60k-access steady-state trace, but the
//! second replay goes through the observability entry point. With no sink
//! installed the only overhead is one relaxed atomic load, so the
//! assertion is identical — zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Same deterministic mixed trace as the core no-alloc test.
fn hot_trace() -> Trace {
    let mut trace = Trace::new();
    let mut state = 0x2E60_1234_5678_9ABCu64;
    for i in 0..60_000u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let addr = Address::new((state % 4096) * 8);
        if state.is_multiple_of(4) {
            let value = if i % 3 == 0 { u64::MAX } else { 0x0101 };
            trace.push(MemoryAccess::write(addr, 8, value));
        } else {
            trace.push(MemoryAccess::read(addr, 8));
        }
    }
    trace
}

#[test]
fn disabled_tracing_replay_allocates_nothing() {
    assert!(
        !cnt_obs::is_enabled(),
        "test requires the default (disabled) sink state"
    );

    let config = CntCacheConfig::builder()
        .name("L1D")
        .size_bytes(8 * 1024)
        .line_bytes(64)
        .associativity(4)
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid geometry");
    let trace = hot_trace();

    let mut cache = CntCache::new(config).expect("valid config");
    // Warm-up replay through the same entry point under test.
    cnt_obs::replay(&mut cache, &trace).expect("well-formed trace");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    cnt_obs::replay(&mut cache, &trace).expect("well-formed trace");
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled-tracing replay of {} accesses must not allocate",
        trace.len()
    );
}
